//! Density-adaptive reachability sets.

use crate::{bitset::IterOnes, interval::IntervalOnes};
use crate::{BitSet, HeapBytes, IntervalSet};

/// A fixed-universe index set that picks its representation by measured
/// density: sorted disjoint ranges while runs are few, a dense [`BitSet`]
/// once fragmentation makes ranges the larger encoding.
///
/// Folded-Clos descendant sets are contiguous leaf ranges by construction,
/// so `UpDownRouting`'s per-switch reach sets are almost always a handful
/// of intervals; random folded Clos and RRN topologies fragment them, and
/// past the break-even point — more 8-byte runs than the bit set has
/// 8-byte words — the set densifies (see [`ReachSet::union_with`]). The
/// choice is a deterministic function of the set's contents, so serial and
/// parallel reachability builds produce structurally identical values and
/// derived sizes are reproducible across machines.
///
/// # Examples
///
/// ```
/// use rfc_graph::ReachSet;
///
/// let mut r = ReachSet::new(1024);
/// let mut leaf = ReachSet::new(1024);
/// leaf.insert(7);
/// r.union_with(&leaf);
/// assert!(r.contains(7) && !r.contains(8));
/// assert!(!r.is_dense(), "one run stays interval-coded");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReachSet {
    /// Run-length representation for (near-)contiguous sets.
    Intervals(IntervalSet),
    /// One-bit-per-index fallback for fragmented sets.
    Dense(BitSet),
}

impl ReachSet {
    /// Creates an empty set over the universe `0..len` (interval-coded).
    pub fn new(len: usize) -> Self {
        ReachSet::Intervals(IntervalSet::new(len))
    }

    /// Size of the universe this set draws from.
    pub fn len(&self) -> usize {
        match self {
            ReachSet::Intervals(s) => s.len(),
            ReachSet::Dense(s) => s.len(),
        }
    }

    /// Whether no index is present.
    pub fn is_empty(&self) -> bool {
        match self {
            ReachSet::Intervals(s) => s.is_empty(),
            ReachSet::Dense(s) => s.is_empty(),
        }
    }

    /// Whether the set has fallen back to the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, ReachSet::Dense(_))
    }

    /// Whether `i` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        match self {
            ReachSet::Intervals(s) => s.contains(i),
            ReachSet::Dense(s) => s.contains(i),
        }
    }

    /// Inserts the single index `i`, re-evaluating the representation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) {
        match self {
            ReachSet::Intervals(s) => {
                s.insert(i);
                self.settle();
            }
            ReachSet::Dense(s) => s.insert(i),
        }
    }

    /// Number of members.
    pub fn count_ones(&self) -> usize {
        match self {
            ReachSet::Intervals(s) => s.count_ones(),
            ReachSet::Dense(s) => s.count_ones(),
        }
    }

    /// Unions `other` into `self`, returning `true` if any member was
    /// added, then re-evaluates the representation: an interval-coded
    /// result densifies once it holds more runs than the equivalent
    /// [`BitSet`] holds words, and a dense set never reverts (unions only
    /// grow, so re-sparsifying could flap).
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universe lengths.
    pub fn union_with(&mut self, other: &ReachSet) -> bool {
        assert_eq!(self.len(), other.len(), "reach set length mismatch");
        let changed = match (&mut *self, other) {
            (ReachSet::Intervals(a), ReachSet::Intervals(b)) => a.union_with(b),
            (ReachSet::Dense(a), ReachSet::Dense(b)) => a.union_with(b),
            (ReachSet::Dense(a), ReachSet::Intervals(b)) => {
                let mut changed = false;
                for &(s, e) in b.ranges() {
                    for i in s..e {
                        let i = i as usize;
                        changed |= !a.contains(i);
                        a.insert(i);
                    }
                }
                changed
            }
            (ReachSet::Intervals(a), ReachSet::Dense(b)) => {
                let mut dense = BitSet::new(a.len());
                for &(s, e) in a.ranges() {
                    for i in s..e {
                        dense.insert(i as usize);
                    }
                }
                let before = dense.count_ones();
                dense.union_with(b);
                let changed = dense.count_ones() != before;
                *self = ReachSet::Dense(dense);
                changed
            }
        };
        self.settle();
        changed
    }

    /// Densifies an interval-coded set whose run list outweighs a bit set.
    fn settle(&mut self) {
        if let ReachSet::Intervals(s) = self {
            // Break-even: each run costs 8 bytes, each BitSet word 8 bytes.
            if s.num_ranges() > s.len().div_ceil(64) {
                let mut dense = BitSet::new(s.len());
                for &(start, end) in s.ranges() {
                    for i in start..end {
                        dense.insert(i as usize);
                    }
                }
                *self = ReachSet::Dense(dense);
            }
        }
    }

    /// Calls `f(i)` for every index in the symmetric difference of the
    /// two sets, in ascending order.
    ///
    /// This is what lets incremental routing repair report *where* a
    /// reach set changed without paying for its size: the dense/dense
    /// case is one XOR per word, the interval/interval case a two-pointer
    /// sweep over the run lists, and only the (rare) mixed-representation
    /// case falls back to merging member iterators.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universe lengths.
    pub fn for_each_diff(&self, other: &ReachSet, mut f: impl FnMut(usize)) {
        assert_eq!(self.len(), other.len(), "reach set length mismatch");
        match (self, other) {
            (ReachSet::Dense(a), ReachSet::Dense(b)) => a.for_each_diff(b, f),
            (ReachSet::Intervals(a), ReachSet::Intervals(b)) => {
                let ar = a.ranges();
                let br = b.ranges();
                let (mut i, mut j) = (0usize, 0usize);
                let mut a_cur = ar.first().copied();
                let mut b_cur = br.first().copied();
                while let (Some((s1, e1)), Some((s2, e2))) = (a_cur, b_cur) {
                    if e1 <= s2 {
                        (s1..e1).for_each(|d| f(d as usize));
                        i += 1;
                        a_cur = ar.get(i).copied();
                    } else if e2 <= s1 {
                        (s2..e2).for_each(|d| f(d as usize));
                        j += 1;
                        b_cur = br.get(j).copied();
                    } else {
                        // Overlapping fronts: the part before the overlap
                        // is one-sided, the overlap itself is common, and
                        // whatever extends past it re-enters the sweep.
                        (s1.min(s2)..s1.max(s2)).for_each(|d| f(d as usize));
                        let m = e1.min(e2);
                        if e1 > m {
                            a_cur = Some((m, e1));
                        } else {
                            i += 1;
                            a_cur = ar.get(i).copied();
                        }
                        if e2 > m {
                            b_cur = Some((m, e2));
                        } else {
                            j += 1;
                            b_cur = br.get(j).copied();
                        }
                    }
                }
                while let Some((s, e)) = a_cur {
                    (s..e).for_each(|d| f(d as usize));
                    i += 1;
                    a_cur = ar.get(i).copied();
                }
                while let Some((s, e)) = b_cur {
                    (s..e).for_each(|d| f(d as usize));
                    j += 1;
                    b_cur = br.get(j).copied();
                }
            }
            _ => {
                let mut ia = self.iter_ones();
                let mut ib = other.iter_ones();
                let (mut na, mut nb) = (ia.next(), ib.next());
                loop {
                    match (na, nb) {
                        (Some(x), Some(y)) if x == y => {
                            na = ia.next();
                            nb = ib.next();
                        }
                        (Some(x), Some(y)) if x < y => {
                            f(x);
                            na = ia.next();
                        }
                        (Some(_), Some(y)) => {
                            f(y);
                            nb = ib.next();
                        }
                        (Some(x), None) => {
                            f(x);
                            na = ia.next();
                        }
                        (None, Some(y)) => {
                            f(y);
                            nb = ib.next();
                        }
                        (None, None) => break,
                    }
                }
            }
        }
    }

    /// Whether every member of `other` is also a member of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universe lengths.
    pub fn is_superset(&self, other: &ReachSet) -> bool {
        assert_eq!(self.len(), other.len(), "reach set length mismatch");
        match (self, other) {
            (ReachSet::Intervals(a), ReachSet::Intervals(b)) => a.is_superset(b),
            (ReachSet::Dense(a), ReachSet::Dense(b)) => a.is_superset(b),
            _ => other.iter_ones().all(|i| self.contains(i)),
        }
    }

    /// Iterates over members in ascending order.
    pub fn iter_ones(&self) -> ReachOnes<'_> {
        match self {
            ReachSet::Intervals(s) => ReachOnes::Intervals(s.iter_ones()),
            ReachSet::Dense(s) => ReachOnes::Dense(s.iter_ones()),
        }
    }

    /// Calls `f(start, end)` for every maximal run of members, ascending.
    ///
    /// This is the primitive the candidate-table build uses to enumerate
    /// destination segments without touching individual indices.
    pub fn for_each_range(&self, mut f: impl FnMut(u32, u32)) {
        match self {
            ReachSet::Intervals(s) => {
                for &(start, end) in s.ranges() {
                    f(start, end);
                }
            }
            ReachSet::Dense(s) => {
                let mut run_start: Option<usize> = None;
                let mut prev = 0usize;
                for i in s.iter_ones() {
                    match run_start {
                        Some(_) if i == prev + 1 => {}
                        Some(start) => {
                            f(crate::vid(start), crate::vid(prev + 1));
                            run_start = Some(i);
                        }
                        None => run_start = Some(i),
                    }
                    prev = i;
                }
                if let Some(start) = run_start {
                    f(crate::vid(start), crate::vid(prev + 1));
                }
            }
        }
    }
}

impl HeapBytes for ReachSet {
    fn heap_bytes(&self) -> usize {
        match self {
            ReachSet::Intervals(s) => s.heap_bytes(),
            ReachSet::Dense(s) => s.heap_bytes(),
        }
    }
}

/// Iterator over members, produced by [`ReachSet::iter_ones`].
#[derive(Debug)]
pub enum ReachOnes<'a> {
    /// Walking interval runs.
    Intervals(IntervalOnes<'a>),
    /// Walking bit-set words.
    Dense(IterOnes<'a>),
}

impl Iterator for ReachOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            ReachOnes::Intervals(it) => it.next(),
            ReachOnes::Dense(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_indices(len: usize, idx: &[usize]) -> ReachSet {
        let mut s = ReachSet::new(len);
        for &i in idx {
            s.insert(i);
        }
        s
    }

    #[test]
    fn contiguous_sets_stay_interval_coded() {
        let mut r = ReachSet::new(10_000);
        let mut other = ReachSet::new(10_000);
        if let ReachSet::Intervals(s) = &mut other {
            s.insert_range(100, 5_000);
        }
        assert!(r.union_with(&other));
        assert!(!r.is_dense());
        assert_eq!(r.count_ones(), 4_900);
        assert_eq!(r.heap_bytes(), 8, "one 8-byte run for 4,900 members");
    }

    #[test]
    fn fragmented_sets_densify_at_break_even() {
        // Universe of 128 → 2 words → densify past 2 runs.
        let r = from_indices(128, &[0, 10, 20]);
        assert!(r.is_dense());
        assert_eq!(r.count_ones(), 3);
        let sparse = from_indices(128, &[0, 10]);
        assert!(!sparse.is_dense(), "2 runs == 2 words stays sparse");
    }

    #[test]
    fn dense_never_reverts() {
        let mut r = from_indices(128, &[0, 10, 20]);
        assert!(r.is_dense());
        let mut full = ReachSet::new(128);
        if let ReachSet::Intervals(s) = &mut full {
            s.insert_range(0, 128);
        }
        r.union_with(&full);
        assert!(r.is_dense());
        assert_eq!(r.count_ones(), 128);
    }

    #[test]
    fn mixed_union_agrees_with_membership() {
        let dense = from_indices(256, &[1, 65, 130, 131, 200, 255]);
        assert!(dense.is_dense());
        let mut sparse = ReachSet::new(256);
        if let ReachSet::Intervals(s) = &mut sparse {
            s.insert_range(60, 70);
        }
        // sparse ∪ dense.
        let mut a = sparse.clone();
        assert!(a.union_with(&dense));
        // dense ∪ sparse.
        let mut b = dense.clone();
        assert!(b.union_with(&sparse));
        let members: Vec<usize> = a.iter_ones().collect();
        assert_eq!(members, b.iter_ones().collect::<Vec<_>>());
        for i in 0..256 {
            let expect = (60..70).contains(&i) || [1, 65, 130, 131, 200, 255].contains(&i);
            assert_eq!(a.contains(i), expect, "index {i}");
        }
    }

    #[test]
    fn superset_across_representations() {
        let dense = from_indices(128, &[3, 40, 90]);
        let mut sparse = ReachSet::new(128);
        sparse.insert(40);
        assert!(dense.is_superset(&sparse));
        assert!(!sparse.is_superset(&dense));
        sparse.insert(3);
        assert!(dense.is_superset(&sparse));
    }

    #[test]
    fn for_each_range_emits_maximal_runs() {
        for set in [
            from_indices(128, &[0, 1, 2, 64, 65, 127]),
            from_indices(1 << 14, &[0, 1, 2, 64, 65, 127]),
        ] {
            let mut runs = Vec::new();
            set.for_each_range(|s, e| runs.push((s, e)));
            assert_eq!(runs, vec![(0, 3), (64, 66), (127, 128)]);
        }
    }

    #[test]
    fn for_each_diff_matches_naive_symmetric_difference() {
        let cases: Vec<(ReachSet, ReachSet)> = vec![
            // interval / interval: nested, disjoint, and staggered runs.
            (from_indices(64, &[]), from_indices(64, &[])),
            (
                {
                    let mut s = ReachSet::new(256);
                    if let ReachSet::Intervals(i) = &mut s {
                        i.insert_range(10, 40);
                        i.insert_range(100, 120);
                    }
                    s
                },
                {
                    let mut s = ReachSet::new(256);
                    if let ReachSet::Intervals(i) = &mut s {
                        i.insert_range(20, 30);
                        i.insert_range(110, 200);
                    }
                    s
                },
            ),
            // dense / dense.
            (
                from_indices(200, &[0, 5, 64, 65, 130, 199]),
                from_indices(200, &[5, 63, 65, 131, 199]),
            ),
            // mixed representations.
            (
                from_indices(128, &[0, 10, 20]),
                from_indices(128, &[19, 20, 21]),
            ),
        ];
        for (a, b) in cases {
            let mut got = Vec::new();
            a.for_each_diff(&b, |i| got.push(i));
            let want: Vec<usize> = (0..a.len())
                .filter(|&i| a.contains(i) != b.contains(i))
                .collect();
            assert_eq!(got, want, "a={a:?} b={b:?}");
            let mut sym = Vec::new();
            b.for_each_diff(&a, |i| sym.push(i));
            assert_eq!(sym, want, "diff must be symmetric");
        }
    }

    #[test]
    fn union_reports_change_across_representations() {
        let mut r = from_indices(128, &[0, 10, 20]);
        let same = from_indices(128, &[0, 10, 20]);
        assert!(!r.union_with(&same));
        let mut sparse = ReachSet::new(128);
        sparse.insert(99);
        assert!(r.union_with(&sparse));
        assert!(!r.union_with(&sparse));
    }
}
