//! Union-find, connected components, and the random-removal disconnection
//! threshold used by the paper's Table 3 resiliency study.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{vid, Csr};

/// Disjoint-set forest (union by size, path halving).
///
/// # Examples
///
/// ```
/// use rfc_graph::DisjointSets;
///
/// let mut ds = DisjointSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert!(ds.connected(0, 1));
/// assert!(!ds.connected(1, 2));
/// assert_eq!(ds.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..vid(n)).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }
}

/// Whether the graph on `n` vertices with the given edges is connected.
///
/// The empty graph (n = 0) is considered connected.
pub fn is_connected_edges(n: usize, edges: &[(u32, u32)]) -> bool {
    if n <= 1 {
        return true;
    }
    let mut ds = DisjointSets::new(n);
    for &(u, v) in edges {
        ds.union(u, v);
        if ds.num_sets() == 1 {
            return true;
        }
    }
    ds.num_sets() == 1
}

/// Whether a [`Csr`] graph is connected.
pub fn is_connected(graph: &Csr) -> bool {
    let n = graph.num_vertices();
    if n <= 1 {
        return true;
    }
    let dist = crate::traversal::bfs_distances(graph, 0);
    dist.iter().all(|&d| d != crate::traversal::UNREACHABLE)
}

/// Component label for every vertex, plus the component count.
pub fn components(graph: &Csr) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..vid(n) {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Result of one random-removal disconnection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisconnectionTrial {
    /// Number of removed links after which the network first became
    /// disconnected (1-based count of removals).
    pub removals: usize,
    /// Total number of links in the intact network.
    pub total_links: usize,
}

impl DisconnectionTrial {
    /// Fraction of links removed at the moment of disconnection.
    pub fn fraction(&self) -> f64 {
        self.removals as f64 / self.total_links as f64
    }
}

/// Removes links one by one in a uniformly random order and reports how many
/// removals first disconnect the graph (the methodology of the paper's
/// Table 3, following the Slim Fly resiliency study).
///
/// Uses binary search over removal prefixes with a union-find rebuild per
/// probe, so a trial costs `O(E α(V) log E)`.
///
/// Returns `None` if the intact graph is already disconnected or has no
/// edges.
pub fn disconnection_trial<R: Rng + ?Sized>(
    n: usize,
    edges: &[(u32, u32)],
    rng: &mut R,
) -> Option<DisconnectionTrial> {
    if edges.is_empty() || !is_connected_edges(n, edges) {
        return None;
    }
    let mut order: Vec<(u32, u32)> = edges.to_vec();
    order.shuffle(rng);
    // connected(k) = graph with the first k links removed is connected.
    // Monotone: more removals can only disconnect further. Find the smallest
    // k with !connected(k).
    let (mut lo, mut hi) = (0usize, order.len()); // connected(lo), !connected(hi)
    if is_connected_edges(n, &[]) {
        // Single-vertex graphs never disconnect; guarded by edges.is_empty()
        // above for n <= 1, but keep the invariant explicit.
        if n <= 1 {
            return None;
        }
    }
    debug_assert!(!is_connected_edges(n, &order[order.len()..]));
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if is_connected_edges(n, &order[mid..]) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(DisconnectionTrial {
        removals: hi,
        total_links: order.len(),
    })
}

/// Averages [`disconnection_trial`] over `trials` random removal orders and
/// returns the mean fraction of links removed at first disconnection.
///
/// Returns `None` if the intact graph is disconnected or edgeless.
pub fn mean_disconnection_fraction<R: Rng + ?Sized>(
    n: usize,
    edges: &[(u32, u32)],
    trials: usize,
    rng: &mut R,
) -> Option<f64> {
    if trials == 0 {
        return None;
    }
    let mut acc = 0.0;
    for _ in 0..trials {
        acc += disconnection_trial(n, edges, rng)?.fraction();
    }
    Some(acc / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn union_find_basics() {
        let mut ds = DisjointSets::new(5);
        assert_eq!(ds.num_sets(), 5);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        ds.union(1, 2);
        assert!(ds.connected(0, 2));
        assert_eq!(ds.num_sets(), 3);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected_edges(3, &[(0, 1), (1, 2)]));
        assert!(!is_connected_edges(3, &[(0, 1)]));
        assert!(is_connected_edges(1, &[]));
        assert!(is_connected_edges(0, &[]));
    }

    #[test]
    fn csr_connectivity_and_components() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert!(!is_connected(&g));
        let (labels, count) = components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[3], labels[4]);
    }

    #[test]
    fn disconnection_of_a_tree_is_immediate() {
        // Any single removal disconnects a tree.
        let edges = [(0, 1), (1, 2), (2, 3)];
        let mut rng = StdRng::seed_from_u64(3);
        let t = disconnection_trial(4, &edges, &mut rng).unwrap();
        assert_eq!(t.removals, 1);
        assert_eq!(t.total_links, 3);
        assert!((t.fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disconnection_of_a_cycle_needs_at_least_two() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let t = disconnection_trial(4, &edges, &mut rng).unwrap();
            assert!(t.removals >= 2, "a cycle survives one removal");
        }
    }

    #[test]
    fn already_disconnected_graph_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(disconnection_trial(3, &[(0, 1)], &mut rng).is_none());
        assert!(disconnection_trial(2, &[], &mut rng).is_none());
    }

    #[test]
    fn mean_fraction_is_in_unit_interval() {
        // Complete graph on 6 vertices.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let f = mean_disconnection_fraction(6, &edges, 25, &mut rng).unwrap();
        assert!(f > 0.3 && f <= 1.0, "complete graph is robust, got {f}");
    }
}
