//! Random graph generation with the Steger–Wormald pairing model.
//!
//! These are Rust ports of the paper's appendix Listings 1 and 2: each
//! vertex contributes `d` *points*; random points are paired, rejecting
//! pairs that would create self-loops or parallel edges, and the whole
//! process restarts if it wedges with no suitable pair left. The result is
//! an (almost) uniformly random simple regular — or semiregular bipartite —
//! graph, generated in expected time `O(N Δ ln Δ)`.

use rand::Rng;

use crate::{vid, GenerationError};

/// Default restart budget; the expected number of restarts is `O(1)` for
/// every parameter regime used in the paper, so hitting this means the
/// parameters are pathological (e.g. a near-complete graph).
const MAX_RESTARTS: usize = 10_000;

/// How many consecutive failed pairing attempts trigger an exhaustive
/// feasibility scan over the still-unsaturated vertices.
const STALL_ATTEMPTS: usize = 64;

/// Generates a uniformly random simple `d`-regular graph on `n` vertices
/// (the paper's Listing 1), returned as adjacency lists.
///
/// # Errors
///
/// Returns [`GenerationError::InfeasibleParameters`] when `n * d` is odd,
/// `d >= n`, or `d == 0` with `n == 0`; and
/// [`GenerationError::RestartLimitExceeded`] if the pairing process fails
/// repeatedly (practically impossible for feasible, sparse parameters).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rfc_graph::random::random_regular;
///
/// # fn main() -> Result<(), rfc_graph::GenerationError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let adj = random_regular(24, 3, &mut rng)?;
/// assert!(adj.iter().all(|list| list.len() == 3));
/// # Ok(())
/// # }
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Vec<Vec<u32>>, GenerationError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GenerationError::InfeasibleParameters {
            reason: format!("n * d must be even (n = {n}, d = {d})"),
        });
    }
    if d >= n && !(d == 0 && n <= 1) {
        return Err(GenerationError::InfeasibleParameters {
            reason: format!("degree d = {d} must be smaller than n = {n}"),
        });
    }
    if d == 0 {
        return Ok(vec![Vec::new(); n]);
    }

    let d32 = vid(d);
    'restart: for _ in 0..MAX_RESTARTS {
        // Points: vertex v owns points v*d .. v*d + d - 1.
        let mut points: Vec<u32> = (0..vid(n * d)).collect();
        let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(d); n];
        let mut stalled = 0usize;
        while !points.is_empty() {
            if stalled >= STALL_ATTEMPTS {
                if !regular_pair_exists(&adj, &points, d) {
                    continue 'restart;
                }
                stalled = 0;
            }
            // Draw two distinct random points by swapping them to the tail.
            let len = points.len();
            let i = rng.gen_range(0..len);
            points.swap(i, len - 1);
            let j = rng.gen_range(0..len - 1);
            points.swap(j, len - 2);
            let u = points[len - 1] / d32;
            let v = points[len - 2] / d32;
            if u == v || adj[u as usize].contains(&v) {
                stalled += 1;
                continue;
            }
            points.truncate(len - 2);
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            stalled = 0;
        }
        return Ok(adj);
    }
    Err(GenerationError::RestartLimitExceeded {
        restarts: MAX_RESTARTS,
    })
}

/// Whether any suitable pair remains among unsaturated vertices in the
/// regular construction.
fn regular_pair_exists(adj: &[Vec<u32>], points: &[u32], d: usize) -> bool {
    let d32 = vid(d);
    let mut open: Vec<u32> = points.iter().map(|&p| p / d32).collect();
    open.sort_unstable();
    open.dedup();
    for (idx, &a) in open.iter().enumerate() {
        for &b in &open[idx + 1..] {
            if !adj[a as usize].contains(&b) {
                return true;
            }
        }
    }
    false
}

/// A random semiregular bipartite graph (the paper's Listing 2).
///
/// Side one has `n1` vertices of degree `d1`; side two has `n2` vertices of
/// degree `d2`. Stored as both adjacency directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    /// For each side-one vertex, its side-two neighbors.
    pub adj1: Vec<Vec<u32>>,
    /// For each side-two vertex, its side-one neighbors.
    pub adj2: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj1.iter().map(Vec::len).sum()
    }

    /// Validates degree regularity and simplicity (no parallel edges).
    pub fn is_semiregular(&self, d1: usize, d2: usize) -> bool {
        self.adj1
            .iter()
            .all(|l| l.len() == d1 && !has_duplicates(l))
            && self
                .adj2
                .iter()
                .all(|l| l.len() == d2 && !has_duplicates(l))
    }
}

fn has_duplicates(list: &[u32]) -> bool {
    let mut sorted = list.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

/// Generates a uniformly random simple bipartite graph with `n1` vertices
/// of degree `d1` on one side and `n2` vertices of degree `d2` on the other
/// (the paper's Listing 2).
///
/// # Errors
///
/// Returns [`GenerationError::InfeasibleParameters`] when
/// `n1 * d1 != n2 * d2`, or a side's degree exceeds the other side's vertex
/// count (no simple graph exists); [`GenerationError::RestartLimitExceeded`]
/// if pairing keeps wedging.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rfc_graph::random::random_bipartite;
///
/// # fn main() -> Result<(), rfc_graph::GenerationError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// // 8 leaves with 2 up-links each; 4 spines with 4 down-links each.
/// let g = random_bipartite(8, 2, 4, 4, &mut rng)?;
/// assert!(g.is_semiregular(2, 4));
/// # Ok(())
/// # }
/// ```
pub fn random_bipartite<R: Rng + ?Sized>(
    n1: usize,
    d1: usize,
    n2: usize,
    d2: usize,
    rng: &mut R,
) -> Result<BipartiteGraph, GenerationError> {
    if n1 * d1 != n2 * d2 {
        return Err(GenerationError::InfeasibleParameters {
            reason: format!("point counts differ: {n1} * {d1} != {n2} * {d2}"),
        });
    }
    if d1 > n2 || d2 > n1 {
        return Err(GenerationError::InfeasibleParameters {
            reason: format!(
                "no simple bipartite graph: degrees ({d1}, {d2}) exceed opposite side sizes ({n2}, {n1})"
            ),
        });
    }
    if n1 * d1 == 0 {
        return Ok(BipartiteGraph {
            adj1: vec![Vec::new(); n1],
            adj2: vec![Vec::new(); n2],
        });
    }

    let (d1_32, d2_32) = (vid(d1), vid(d2));
    'restart: for _ in 0..MAX_RESTARTS {
        let mut points1: Vec<u32> = (0..vid(n1 * d1)).collect();
        let mut points2: Vec<u32> = (0..vid(n2 * d2)).collect();
        let mut adj1: Vec<Vec<u32>> = vec![Vec::with_capacity(d1); n1];
        let mut adj2: Vec<Vec<u32>> = vec![Vec::with_capacity(d2); n2];
        let mut stalled = 0usize;
        while !points1.is_empty() {
            if stalled >= STALL_ATTEMPTS {
                if !bipartite_pair_exists(&adj1, &points1, &points2, d1, d2) {
                    continue 'restart;
                }
                stalled = 0;
            }
            let len1 = points1.len();
            let i = rng.gen_range(0..len1);
            points1.swap(i, len1 - 1);
            let len2 = points2.len();
            let j = rng.gen_range(0..len2);
            points2.swap(j, len2 - 1);
            let u = points1[len1 - 1] / d1_32;
            let v = points2[len2 - 1] / d2_32;
            if adj1[u as usize].contains(&v) {
                stalled += 1;
                continue;
            }
            points1.truncate(len1 - 1);
            points2.truncate(len2 - 1);
            adj1[u as usize].push(v);
            adj2[v as usize].push(u);
            stalled = 0;
        }
        return Ok(BipartiteGraph { adj1, adj2 });
    }
    Err(GenerationError::RestartLimitExceeded {
        restarts: MAX_RESTARTS,
    })
}

/// Whether any suitable (non-duplicate) pair remains among unsaturated
/// vertices of both sides.
fn bipartite_pair_exists(
    adj1: &[Vec<u32>],
    points1: &[u32],
    points2: &[u32],
    d1: usize,
    d2: usize,
) -> bool {
    let (d1_32, d2_32) = (vid(d1), vid(d2));
    let mut open1: Vec<u32> = points1.iter().map(|&p| p / d1_32).collect();
    open1.sort_unstable();
    open1.dedup();
    let mut open2: Vec<u32> = points2.iter().map(|&p| p / d2_32).collect();
    open2.sort_unstable();
    open2.dedup();
    for &a in &open1 {
        for &b in &open2 {
            if !adj1[a as usize].contains(&b) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regular_graph_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(11);
        let adj = random_regular(50, 6, &mut rng).unwrap();
        for (v, list) in adj.iter().enumerate() {
            assert_eq!(list.len(), 6);
            assert!(!list.contains(&(v as u32)), "self-loop at {v}");
            assert!(!has_duplicates(list), "parallel edge at {v}");
        }
        // Symmetry.
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                assert!(adj[u as usize].contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn regular_rejects_odd_total_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            random_regular(5, 3, &mut rng),
            Err(GenerationError::InfeasibleParameters { .. })
        ));
    }

    #[test]
    fn regular_rejects_degree_at_least_n() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(4, 4, &mut rng).is_err());
    }

    #[test]
    fn regular_degree_zero_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let adj = random_regular(3, 0, &mut rng).unwrap();
        assert!(adj.iter().all(Vec::is_empty));
    }

    #[test]
    fn regular_complete_graph_edge_case() {
        // d = n - 1 forces the complete graph; the stall scan must rescue
        // the tail instead of spinning.
        let mut rng = StdRng::seed_from_u64(13);
        let adj = random_regular(6, 5, &mut rng).unwrap();
        assert!(adj.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn bipartite_is_semiregular() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = random_bipartite(30, 4, 20, 6, &mut rng).unwrap();
        assert!(g.is_semiregular(4, 6));
        assert_eq!(g.num_edges(), 120);
        // Cross-consistency of both directions.
        for (u, list) in g.adj1.iter().enumerate() {
            for &v in list {
                assert!(g.adj2[v as usize].contains(&(u as u32)));
            }
        }
    }

    #[test]
    fn bipartite_rejects_mismatched_points() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_bipartite(4, 3, 5, 2, &mut rng).is_err());
    }

    #[test]
    fn bipartite_rejects_oversized_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        // d1 = 4 > n2 = 2: a side-one vertex cannot have 4 distinct
        // neighbors among 2 vertices.
        assert!(random_bipartite(1, 4, 2, 2, &mut rng).is_err());
    }

    #[test]
    fn bipartite_complete_edge_case() {
        // d1 = n2 and d2 = n1 forces the complete bipartite graph.
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_bipartite(4, 3, 3, 4, &mut rng).unwrap();
        assert!(g.is_semiregular(3, 4));
    }

    #[test]
    fn bipartite_empty_is_fine() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_bipartite(3, 0, 0, 0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn regular_generation_is_roughly_uniform_over_edges() {
        // Steger-Wormald is near-uniform over simple regular graphs, so
        // over many draws every potential edge should appear with
        // probability ~ d/(n-1). n = 8, d = 3: P(edge) = 3/7.
        let (n, d, draws) = (8usize, 3usize, 3_000usize);
        let mut rng = StdRng::seed_from_u64(424242);
        let mut counts = vec![0u32; n * n];
        for _ in 0..draws {
            let adj = random_regular(n, d, &mut rng).unwrap();
            for (u, list) in adj.iter().enumerate() {
                for &v in list {
                    if (u as u32) < v {
                        counts[u * n + v as usize] += 1;
                    }
                }
            }
        }
        let expected = draws as f64 * d as f64 / (n as f64 - 1.0);
        for u in 0..n {
            for v in (u + 1)..n {
                let c = f64::from(counts[u * n + v]);
                assert!(
                    (c - expected).abs() < 0.15 * expected,
                    "edge ({u},{v}): {c} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn bipartite_generation_is_roughly_uniform_over_edges() {
        let (n1, d1, n2, d2, draws) = (6usize, 2usize, 4usize, 3usize, 3_000usize);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0u32; n1 * n2];
        for _ in 0..draws {
            let g = random_bipartite(n1, d1, n2, d2, &mut rng).unwrap();
            for (u, list) in g.adj1.iter().enumerate() {
                for &v in list {
                    counts[u * n2 + v as usize] += 1;
                }
            }
        }
        // P(u ~ v) = d1 / n2 = 1/2.
        let expected = draws as f64 * d1 as f64 / n2 as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() < 0.12 * expected,
                "pair {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn regular_generation_is_seed_deterministic() {
        let a = random_regular(40, 4, &mut StdRng::seed_from_u64(99)).unwrap();
        let b = random_regular(40, 4, &mut StdRng::seed_from_u64(99)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn regular_graphs_are_usually_connected_at_the_jellyfish_regime() {
        // Random regular graphs with d >= 3 are connected w.h.p.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let adj = random_regular(64, 4, &mut rng).unwrap();
            let g = crate::Csr::from_adjacency(&adj);
            assert!(crate::connectivity::is_connected(&g));
        }
    }
}
