//! A fixed-width bit set used for reachability bookkeeping.

use std::fmt;

/// A fixed-length set of bits backed by `u64` words.
///
/// The routing crate stores, for every switch, the set of leaf switches
/// reachable downward (and via up-then-down paths) as one `BitSet` per
/// switch; set union is the inner loop of the reachability dynamic program,
/// so it operates on whole words.
///
/// # Examples
///
/// ```
/// use rfc_graph::BitSet;
///
/// let mut a = BitSet::new(130);
/// a.insert(0);
/// a.insert(129);
/// let mut b = BitSet::new(130);
/// b.insert(64);
/// assert!(a.union_with(&b));
/// assert_eq!(a.count_ones(), 3);
/// assert!(a.contains(64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold bits `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Unions `other` into `self`, returning `true` if any bit changed.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        let mut changed = false;
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }

    /// Calls `f(i)` for every index set in exactly one of the two sets,
    /// in ascending order — one XOR per word, so near-equal sets cost
    /// almost nothing.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn for_each_diff(&self, other: &BitSet, mut f: impl FnMut(usize)) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                f(wi * 64 + x.trailing_zeros() as usize);
                x &= x - 1;
            }
        }
    }

    /// Whether the two sets share any bit.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether every bit of `other` is also set in `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn is_superset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == b)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit in `0..len`.
    pub fn insert_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl crate::HeapBytes for BitSet {
    /// Heap bytes of the word array: one `u64` per 64 bits of universe.
    fn heap_bytes(&self) -> usize {
        crate::heap::slice_heap_bytes(&self.words)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitSet")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

/// Iterator over set bit indices, produced by [`BitSet::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(63));
        s.insert(63);
        s.insert(64);
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63) && s.contains(64));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
    }

    #[test]
    fn intersects_and_superset() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(69);
        assert!(!a.intersects(&b));
        b.insert(69);
        assert!(a.intersects(&b));
        assert!(a.is_superset(&b));
        b.insert(1);
        assert!(!a.is_superset(&b));
    }

    #[test]
    fn insert_all_respects_length() {
        let mut s = BitSet::new(67);
        s.insert_all();
        assert_eq!(s.count_ones(), 67);
        let mut t = BitSet::new(64);
        t.insert_all();
        assert_eq!(t.count_ones(), 64);
    }

    #[test]
    fn iter_ones_matches_contents() {
        let mut s = BitSet::new(200);
        for i in [0, 1, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        let ones: Vec<_> = s.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = BitSet::new(10);
        s.insert(5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn zero_length_set_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(5);
        s.insert(5);
    }
}
