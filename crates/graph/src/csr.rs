//! Compressed-sparse-row adjacency for undirected graphs.

use std::fmt;

use crate::vid;

/// An immutable undirected graph in compressed sparse row form.
///
/// Vertices are identified by dense `u32` indices `0..n`. Each undirected
/// edge `{u, v}` is stored as the two arcs `u -> v` and `v -> u`; parallel
/// edges and self-loops are representable but none of the generators in this
/// workspace produce them.
///
/// # Examples
///
/// ```
/// use rfc_graph::Csr;
///
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a graph with `n` vertices from a list of undirected edges.
    ///
    /// Neighbor lists are sorted ascending, so [`Csr::neighbors`] output is
    /// deterministic regardless of the edge order supplied.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc as usize];
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
        }
        Self { offsets, targets }
    }

    /// Builds a graph from adjacency lists (each undirected edge must appear
    /// in both endpoint lists, as produced by [`crate::random`]).
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is not symmetric in total arc count (i.e. the
    /// sum of list lengths is odd) or any target is out of range.
    pub fn from_adjacency(adj: &[Vec<u32>]) -> Self {
        let n = adj.len();
        let arcs: usize = adj.iter().map(Vec::len).sum();
        assert!(
            arcs.is_multiple_of(2),
            "adjacency lists hold an odd number of arcs"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for list in adj {
            acc += vid(list.len());
            offsets.push(acc);
        }
        let mut targets = Vec::with_capacity(arcs);
        for list in adj {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            for &t in &sorted {
                assert!((t as usize) < n, "adjacency target out of range");
                targets.push(t);
            }
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..vid(self.num_vertices()))
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u <= v)
    }

    /// Maximum degree over all vertices, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..vid(self.num_vertices()))
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether every vertex has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..vid(self.num_vertices())).all(|v| self.degree(v) == d)
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_edges_and_sorts_neighbors() {
        let g = Csr::from_edges(5, &[(3, 1), (0, 4), (1, 0), (2, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(4), &[0]);
    }

    #[test]
    fn from_adjacency_round_trips_edges() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let g = Csr::from_adjacency(&adj);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 0));
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_regular(2));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_and_max_degree() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert!(!g.is_regular(3));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = Csr::from_edges(3, &[(0, 2)]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let _ = Csr::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Csr::from_edges(1, &[]);
        assert!(!format!("{g:?}").is_empty());
    }
}
