//! Heap-size accounting for the memory ratchet.

/// Logical heap bytes held by a value, excluding the value's own
/// `size_of::<Self>()` footprint.
///
/// Implementations report **logical** size — `len × size_of::<T>()` for a
/// `Vec<T>`, via [`slice_heap_bytes`] — not allocator capacity, so the
/// figure is a deterministic function of the data structure's contents and
/// can be ratcheted per scale in `xtask-ratchet.toml` (the
/// `routing-bytes-per-terminal` keys, DESIGN.md §15) without tripping on
/// growth-policy or allocator differences between machines.
pub trait HeapBytes {
    /// Logical bytes of owned heap storage.
    fn heap_bytes(&self) -> usize;
}

/// Logical heap bytes of a slice: `len × size_of::<T>()`.
#[inline]
#[must_use]
pub fn slice_heap_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

impl<T> HeapBytes for Vec<T> {
    fn heap_bytes(&self) -> usize {
        slice_heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_reports_logical_bytes() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.push(1);
        v.push(2);
        assert_eq!(v.heap_bytes(), 8, "capacity does not count");
    }
}
