//! Error type for random graph generation.

use std::error::Error;
use std::fmt;

/// Error returned by the generators in [`crate::random`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenerationError {
    /// The requested parameters cannot produce any simple graph
    /// (e.g. odd `n * d`, `d >= n`, or mismatched bipartite point counts).
    InfeasibleParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The pairing process failed to complete within the allowed number of
    /// restarts. For feasible parameters this is astronomically unlikely;
    /// it guards against callers asking for near-complete graphs where the
    /// rejection step almost always triggers.
    RestartLimitExceeded {
        /// Number of restarts attempted before giving up.
        restarts: usize,
    },
}

impl fmt::Display for GenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerationError::InfeasibleParameters { reason } => {
                write!(f, "infeasible generation parameters: {reason}")
            }
            GenerationError::RestartLimitExceeded { restarts } => {
                write!(
                    f,
                    "random pairing did not complete after {restarts} restarts"
                )
            }
        }
    }
}

impl Error for GenerationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let e = GenerationError::InfeasibleParameters {
            reason: "d >= n".into(),
        };
        assert!(e.to_string().contains("d >= n"));
        let e = GenerationError::RestartLimitExceeded { restarts: 7 };
        assert!(e.to_string().contains('7'));
    }
}
