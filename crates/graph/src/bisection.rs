//! Empirical bisection-width estimation.
//!
//! The paper's Section 4.2 argues bisection *lower* bounds from
//! Bollobás' isoperimetric constant. This module complements those with
//! empirical *upper* bounds: sample random balanced partitions and
//! refine them with greedy Kernighan–Lin-style swaps; the best cut found
//! bounds the true bisection width from above, bracketing it together
//! with the analytic bound.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{vid, Csr};

/// Number of edges crossing the balanced partition defined by `side`
/// (`true` = side A).
///
/// # Panics
///
/// Panics if `side.len()` differs from the vertex count.
pub fn cut_width(graph: &Csr, side: &[bool]) -> usize {
    assert_eq!(
        side.len(),
        graph.num_vertices(),
        "side labels must cover all vertices"
    );
    graph
        .edges()
        .filter(|&(u, v)| side[u as usize] != side[v as usize])
        .count()
}

/// A uniformly random balanced partition (|A| = ⌈n/2⌉).
pub fn random_balanced_partition<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<bool> {
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    let mut side = vec![false; n];
    for &v in ids.iter().take(n.div_ceil(2)) {
        side[v] = true;
    }
    side
}

/// Greedy refinement: repeatedly swap the cross-partition vertex pair
/// with the best cut reduction until no swap helps (a lightweight
/// Kernighan–Lin pass). Modifies `side` in place and returns the final
/// cut width.
pub fn refine_partition(graph: &Csr, side: &mut [bool]) -> usize {
    let n = graph.num_vertices();
    // gain[v] = cut reduction from moving v across (external - internal
    // incident edges).
    let gain = |side: &[bool], v: u32| -> i64 {
        let mut external = 0i64;
        let mut internal = 0i64;
        for &w in graph.neighbors(v) {
            if side[w as usize] != side[v as usize] {
                external += 1;
            } else {
                internal += 1;
            }
        }
        external - internal
    };
    loop {
        let mut best: Option<(u32, u32, i64)> = None;
        for a in 0..vid(n) {
            if !side[a as usize] {
                continue;
            }
            let ga = gain(side, a);
            if ga <= 0 && best.is_some() {
                continue; // cheap pruning: need positive combined gain
            }
            for b in 0..vid(n) {
                if side[b as usize] {
                    continue;
                }
                let gb = gain(side, b);
                // Swapping a and b changes the cut by -(ga + gb) plus 2
                // if they are adjacent (their edge flips twice).
                let adj = if graph.has_edge(a, b) { 2 } else { 0 };
                let delta = ga + gb - adj;
                if delta > best.map_or(0, |(_, _, d)| d) {
                    best = Some((a, b, delta));
                }
            }
        }
        match best {
            Some((a, b, _)) => {
                side[a as usize] = false;
                side[b as usize] = true;
            }
            None => break,
        }
    }
    cut_width(graph, side)
}

/// The best (smallest) balanced cut found over `trials` random starts,
/// each refined greedily — an upper bound on the bisection width.
///
/// Returns `None` for graphs with fewer than 2 vertices.
pub fn estimate_bisection_width<R: Rng + ?Sized>(
    graph: &Csr,
    trials: usize,
    rng: &mut R,
) -> Option<usize> {
    let n = graph.num_vertices();
    if n < 2 || trials == 0 {
        return None;
    }
    let mut best = usize::MAX;
    for _ in 0..trials {
        let mut side = random_balanced_partition(n, rng);
        best = best.min(refine_partition(graph, &mut side));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cut_width_counts_crossing_edges() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(cut_width(&g, &[true, true, false, false]), 2);
        assert_eq!(cut_width(&g, &[true, false, true, false]), 4);
    }

    #[test]
    fn partition_is_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 5, 10, 33] {
            let side = random_balanced_partition(n, &mut rng);
            let a = side.iter().filter(|&&s| s).count();
            assert_eq!(a, n.div_ceil(2), "n = {n}");
        }
    }

    #[test]
    fn refinement_finds_the_obvious_cut_of_two_cliques() {
        // Two K4s joined by one bridge: bisection width 1.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = Csr::from_edges(8, &edges);
        let mut rng = StdRng::seed_from_u64(2);
        let width = estimate_bisection_width(&g, 8, &mut rng).unwrap();
        assert_eq!(width, 1);
    }

    #[test]
    fn estimate_upper_bounds_the_cycle_bisection() {
        // An even cycle has bisection width exactly 2.
        let n = 16;
        let mut edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let g = Csr::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let width = estimate_bisection_width(&g, 10, &mut rng).unwrap();
        assert_eq!(width, 2);
    }

    #[test]
    fn degenerate_inputs() {
        let g = Csr::from_edges(1, &[]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(estimate_bisection_width(&g, 3, &mut rng), None);
        let g2 = Csr::from_edges(2, &[(0, 1)]);
        assert_eq!(estimate_bisection_width(&g2, 0, &mut rng), None);
        assert_eq!(estimate_bisection_width(&g2, 1, &mut rng), Some(1));
    }
}
