//! Property-based equivalence: the compressed leaf-set representations
//! must be indistinguishable from the dense [`BitSet`] they replaced.
//!
//! `UpDownRouting` stores reach sets as [`IntervalSet`]s (with a
//! [`ReachSet`] dense fallback), chosen purely for memory; every
//! observable query — `contains`, `count_ones`, iteration order, union
//! change-flags, superset tests — must agree with the bit-per-leaf
//! baseline on arbitrary mixes of point inserts and range unions,
//! including the adjacent/overlapping runs that exercise interval
//! coalescing.

use proptest::prelude::*;

use rfc_graph::{BitSet, IntervalSet, ReachSet};

/// A universe size plus an op sequence over it: point inserts and
/// half-open range inserts, skewed so adjacent and overlapping ranges
/// (the coalescing paths) appear often.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Range(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (1usize..200).prop_flat_map(|len| {
        let op = (0usize..2, 0..len, 1usize..16).prop_map(move |(kind, s, w)| {
            if kind == 0 {
                Op::Insert(s)
            } else {
                Op::Range(s, (s + w).min(len))
            }
        });
        proptest::collection::vec(op, 0..40).prop_map(move |ops| (len, ops))
    })
}

/// Applies one op sequence to all three representations.
fn build(len: usize, ops: &[Op]) -> (IntervalSet, ReachSet, BitSet) {
    let mut iv = IntervalSet::new(len);
    let mut rs = ReachSet::new(len);
    let mut bs = BitSet::new(len);
    for op in ops {
        match *op {
            Op::Insert(i) => {
                iv.insert(i);
                rs.insert(i);
                bs.insert(i);
            }
            Op::Range(s, e) => {
                iv.insert_range(s, e);
                for i in s..e {
                    rs.insert(i);
                    bs.insert(i);
                }
            }
        }
    }
    (iv, rs, bs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn queries_agree_with_the_dense_baseline((len, ops) in arb_ops()) {
        let (iv, rs, bs) = build(len, &ops);
        prop_assert_eq!(iv.len(), len);
        prop_assert_eq!(rs.len(), len);
        prop_assert_eq!(iv.count_ones(), bs.count_ones());
        prop_assert_eq!(rs.count_ones(), bs.count_ones());
        prop_assert_eq!(iv.is_empty(), bs.count_ones() == 0);
        for i in 0..len {
            prop_assert_eq!(iv.contains(i), bs.contains(i), "interval contains({i})");
            prop_assert_eq!(rs.contains(i), bs.contains(i), "reach contains({i})");
        }
        let dense: Vec<usize> = bs.iter_ones().collect();
        prop_assert_eq!(iv.iter_ones().collect::<Vec<_>>(), dense.clone());
        prop_assert_eq!(rs.iter_ones().collect::<Vec<_>>(), dense);
    }

    #[test]
    fn ranges_stay_canonical((len, ops) in arb_ops()) {
        // Sorted, non-empty, non-overlapping, and never merely adjacent:
        // the memory claim rests on runs coalescing eagerly.
        let (iv, _, _) = build(len, &ops);
        let ranges = iv.ranges();
        prop_assert_eq!(ranges.len(), iv.num_ranges());
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges {:?} must coalesce", w);
        }
        for &(s, e) in ranges {
            prop_assert!(s < e, "empty range ({s}, {e})");
            prop_assert!(e as usize <= len);
        }
    }

    #[test]
    fn unions_agree_with_the_dense_baseline(
        (len, ops_a) in arb_ops(),
        more in proptest::collection::vec(0usize..200, 0..40),
    ) {
        // Same universe, second op stream reduced modulo `len`.
        let ops_b: Vec<Op> = more.into_iter().map(|i| Op::Insert(i % len)).collect();
        let (mut iv_a, mut rs_a, mut bs_a) = build(len, &ops_a);
        let (iv_b, rs_b, bs_b) = build(len, &ops_b);

        prop_assert_eq!(iv_a.is_superset(&iv_b), bs_a.is_superset(&bs_b));
        prop_assert_eq!(rs_a.is_superset(&rs_b), bs_a.is_superset(&bs_b));

        // The change flag drives fixed-point iteration in the reach
        // passes, so it must match exactly, not just the contents.
        let changed = bs_a.union_with(&bs_b);
        prop_assert_eq!(iv_a.union_with(&iv_b), changed);
        prop_assert_eq!(rs_a.union_with(&rs_b), changed);

        let dense: Vec<usize> = bs_a.iter_ones().collect();
        prop_assert_eq!(iv_a.iter_ones().collect::<Vec<_>>(), dense.clone());
        prop_assert_eq!(rs_a.iter_ones().collect::<Vec<_>>(), dense);
        prop_assert!(bs_a.is_superset(&bs_b), "a union is a superset of both operands");
        prop_assert!(iv_a.is_superset(&iv_b));
        prop_assert!(rs_a.is_superset(&rs_b));
    }

    #[test]
    fn for_each_range_reconstructs_iteration((len, ops) in arb_ops()) {
        // The run-length consumer (`for_each_dst_run`, feeding the RLE
        // candidate table) and element iteration must describe the same
        // set regardless of which representation ReachSet settled on.
        let (_, rs, bs) = build(len, &ops);
        let mut expanded = Vec::new();
        rs.for_each_range(|s, e| {
            assert!(s < e, "empty run ({s}, {e})");
            assert!(expanded.last().is_none_or(|&last| last + 1 < s as usize), "runs must coalesce");
            expanded.extend((s as usize)..(e as usize));
        });
        prop_assert_eq!(expanded, bs.iter_ones().collect::<Vec<_>>());
    }
}
