//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_graph::bisection::{cut_width, estimate_bisection_width, random_balanced_partition};
use rfc_graph::connectivity::{components, disconnection_trial, is_connected, DisjointSets};
use rfc_graph::random::random_regular;
use rfc_graph::traversal::{bfs_distances, diameter, UNREACHABLE};
use rfc_graph::{BitSet, Csr};

/// An arbitrary simple graph as a filtered edge list.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32).prop_filter("no self loop", |(a, b)| a != b);
        proptest::collection::vec(edge, 0..80).prop_map(move |mut edges| {
            for e in &mut edges {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            }
            edges.sort_unstable();
            edges.dedup();
            (n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let d = bfs_distances(&g, 0);
        for &(u, v) in &edges {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "edge endpoints must be co-reachable");
            }
        }
    }

    #[test]
    fn components_agree_with_connectivity((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        let (labels, count) = components(&g);
        prop_assert_eq!(count == 1, is_connected(&g));
        for &(u, v) in &edges {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Union-find agrees.
        let mut ds = DisjointSets::new(n);
        for &(u, v) in &edges {
            ds.union(u, v);
        }
        prop_assert_eq!(ds.num_sets(), count);
    }

    #[test]
    fn diameter_is_none_iff_disconnected((n, edges) in arb_graph()) {
        let g = Csr::from_edges(n, &edges);
        prop_assert_eq!(diameter(&g).is_some(), is_connected(&g));
    }

    #[test]
    fn disconnection_trial_is_within_bounds((n, edges) in arb_graph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(t) = disconnection_trial(n, &edges, &mut rng) {
            prop_assert!(t.removals >= 1);
            prop_assert!(t.removals <= t.total_links);
            prop_assert_eq!(t.total_links, edges.len());
            // Removing the found prefix in any order disconnects only at
            // >= min-cut; sanity: fraction in (0, 1].
            prop_assert!(t.fraction() > 0.0 && t.fraction() <= 1.0);
        } else {
            prop_assert!(edges.is_empty() || !rfc_graph::connectivity::is_connected_edges(n, &edges));
        }
    }

    #[test]
    fn estimated_bisection_bounds_any_random_cut((n, edges) in arb_graph(), seed in 0u64..500) {
        let g = Csr::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(best) = estimate_bisection_width(&g, 3, &mut rng) {
            let side = random_balanced_partition(n, &mut rng);
            prop_assert!(best <= cut_width(&g, &side), "estimate must be the minimum seen");
        }
    }

    #[test]
    fn regular_graphs_have_matching_edge_count(
        n in 4usize..40,
        d in 2usize..5,
        seed in 0u64..500,
    ) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_regular(n, d, &mut rng).unwrap();
        let g = Csr::from_adjacency(&adj);
        prop_assert_eq!(g.num_edges(), n * d / 2);
    }

    #[test]
    fn bitset_union_is_idempotent_and_monotone(
        bits_a in proptest::collection::vec(0usize..200, 0..40),
        bits_b in proptest::collection::vec(0usize..200, 0..40),
    ) {
        let mut a = BitSet::new(200);
        for &b in &bits_a {
            a.insert(b);
        }
        let mut b = BitSet::new(200);
        for &x in &bits_b {
            b.insert(x);
        }
        let before = a.count_ones();
        a.union_with(&b);
        prop_assert!(a.count_ones() >= before);
        prop_assert!(a.is_superset(&b));
        let after = a.clone();
        a.union_with(&b);
        prop_assert_eq!(a, after, "idempotent");
    }
}
