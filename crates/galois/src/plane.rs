//! The projective plane PG(2, q) as explicit incidence lists.

use std::fmt;

use crate::{FieldError, GaloisField};

/// The projective plane of order `q`.
///
/// Points and lines are both indexed `0..q²+q+1` using the standard
/// normalized homogeneous coordinates over GF(q):
///
/// * `(1, a, b)` for `a, b ∈ F` — `q²` of them,
/// * `(0, 1, a)` for `a ∈ F` — `q` of them,
/// * `(0, 0, 1)` — one.
///
/// A point `P` lies on line `L` iff the dot product of their coordinate
/// triples is zero. Every line holds `q + 1` points, every point lies on
/// `q + 1` lines, and two distinct points (lines) determine exactly one
/// common line (point) — the properties the OFT construction relies on.
#[derive(Clone)]
pub struct ProjectivePlane {
    q: u32,
    lines_of_point: Vec<Vec<u32>>,
    points_of_line: Vec<Vec<u32>>,
}

impl fmt::Debug for ProjectivePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProjectivePlane")
            .field("order", &self.q)
            .field("points", &self.num_points())
            .finish()
    }
}

impl ProjectivePlane {
    /// Constructs PG(2, q).
    ///
    /// # Errors
    ///
    /// Propagates [`FieldError`] when `q` is not a prime power or exceeds
    /// [`crate::MAX_ORDER`].
    pub fn new(q: u32) -> Result<Self, FieldError> {
        let f = GaloisField::new(q)?;
        let reps = normalized_triples(q);
        let m = reps.len();
        debug_assert_eq!(m as u32, q * q + q + 1);
        let mut lines_of_point = vec![Vec::with_capacity(q as usize + 1); m];
        let mut points_of_line = vec![Vec::with_capacity(q as usize + 1); m];
        for (line, lc) in reps.iter().enumerate() {
            for (point, pc) in reps.iter().enumerate() {
                let dot = f.add(
                    f.add(f.mul(lc[0], pc[0]), f.mul(lc[1], pc[1])),
                    f.mul(lc[2], pc[2]),
                );
                if dot == 0 {
                    lines_of_point[point].push(line as u32);
                    points_of_line[line].push(point as u32);
                }
            }
        }
        Ok(Self {
            q,
            lines_of_point,
            points_of_line,
        })
    }

    /// The plane order `q`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// Number of points, `q² + q + 1` (equal to the number of lines).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.lines_of_point.len()
    }

    /// Number of lines, `q² + q + 1`.
    #[inline]
    pub fn num_lines(&self) -> usize {
        self.points_of_line.len()
    }

    /// The `q + 1` lines through `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    pub fn lines_of_point(&self, point: u32) -> &[u32] {
        &self.lines_of_point[point as usize]
    }

    /// The `q + 1` points on `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn points_of_line(&self, line: u32) -> &[u32] {
        &self.points_of_line[line as usize]
    }

    /// Whether `point` lies on `line`.
    pub fn incident(&self, point: u32, line: u32) -> bool {
        self.lines_of_point[point as usize]
            .binary_search(&line)
            .is_ok()
            || self.lines_of_point[point as usize].contains(&line)
    }

    /// Lines through both points (exactly one when the points differ).
    pub fn common_lines(&self, a: u32, b: u32) -> Vec<u32> {
        let la = &self.lines_of_point[a as usize];
        let lb = &self.lines_of_point[b as usize];
        la.iter().filter(|l| lb.contains(l)).copied().collect()
    }
}

/// The canonical projective representatives: `(1, a, b)`, `(0, 1, a)`,
/// `(0, 0, 1)`.
fn normalized_triples(q: u32) -> Vec<[u32; 3]> {
    let mut reps = Vec::with_capacity((q * q + q + 1) as usize);
    for a in 0..q {
        for b in 0..q {
            reps.push([1, a, b]);
        }
    }
    for a in 0..q {
        reps.push([0, 1, a]);
    }
    reps.push([0, 0, 1]);
    reps
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fano plane and a few larger orders, including extension fields.
    const ORDERS: [u32; 5] = [2, 3, 4, 5, 8];

    #[test]
    fn counts_match_q2_q_1() {
        for q in ORDERS {
            let plane = ProjectivePlane::new(q).unwrap();
            let m = (q * q + q + 1) as usize;
            assert_eq!(plane.num_points(), m);
            assert_eq!(plane.num_lines(), m);
        }
    }

    #[test]
    fn every_line_has_q_plus_1_points_and_dually() {
        for q in ORDERS {
            let plane = ProjectivePlane::new(q).unwrap();
            for l in 0..plane.num_lines() as u32 {
                assert_eq!(
                    plane.points_of_line(l).len(),
                    q as usize + 1,
                    "line {l} in order {q}"
                );
            }
            for p in 0..plane.num_points() as u32 {
                assert_eq!(
                    plane.lines_of_point(p).len(),
                    q as usize + 1,
                    "point {p} in order {q}"
                );
            }
        }
    }

    #[test]
    fn two_distinct_points_share_exactly_one_line() {
        for q in [2, 3, 4] {
            let plane = ProjectivePlane::new(q).unwrap();
            let n = plane.num_points() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    assert_eq!(
                        plane.common_lines(a, b).len(),
                        1,
                        "points {a},{b} in order {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_distinct_lines_meet_in_exactly_one_point() {
        for q in [2, 3] {
            let plane = ProjectivePlane::new(q).unwrap();
            let n = plane.num_lines() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    let pa = plane.points_of_line(a);
                    let shared = pa
                        .iter()
                        .filter(|p| plane.points_of_line(b).contains(p))
                        .count();
                    assert_eq!(shared, 1, "lines {a},{b} in order {q}");
                }
            }
        }
    }

    #[test]
    fn incidence_is_consistent_both_ways() {
        let plane = ProjectivePlane::new(4).unwrap();
        for l in 0..plane.num_lines() as u32 {
            for &p in plane.points_of_line(l) {
                assert!(plane.incident(p, l));
            }
        }
    }

    #[test]
    fn rejects_non_prime_power_order() {
        assert!(ProjectivePlane::new(6).is_err());
        assert!(ProjectivePlane::new(10).is_err());
    }

    #[test]
    fn fano_plane_shape() {
        let plane = ProjectivePlane::new(2).unwrap();
        assert_eq!(plane.num_points(), 7);
        // Every point pair appears on exactly one of the 7 lines; total
        // incidences: 7 lines x 3 points.
        let incidences: usize = (0..7).map(|l| plane.points_of_line(l).len()).sum();
        assert_eq!(incidences, 21);
        assert!(format!("{plane:?}").contains("order"));
    }
}
