//! Table-driven arithmetic in GF(p^k).

use std::error::Error as StdError;
use std::fmt;

/// Largest supported field order. The multiplication and inverse tables use
/// `O(q²)` memory, which at this cap is ~32 MiB; the paper's OFT instances
/// never exceed order 37.
pub const MAX_ORDER: u32 = 4096;

/// Error constructing a [`GaloisField`] or [`crate::ProjectivePlane`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FieldError {
    /// The requested order is not a prime power (no field of that order
    /// exists).
    NotPrimePower {
        /// The rejected order.
        order: u32,
    },
    /// The requested order exceeds [`MAX_ORDER`].
    OrderTooLarge {
        /// The rejected order.
        order: u32,
    },
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::NotPrimePower { order } => {
                write!(f, "no finite field of order {order}: not a prime power")
            }
            FieldError::OrderTooLarge { order } => {
                write!(
                    f,
                    "field order {order} exceeds the supported maximum {MAX_ORDER}"
                )
            }
        }
    }
}

impl StdError for FieldError {}

/// Decomposes `q` as `p^k` with `p` prime, if possible.
///
/// # Examples
///
/// ```
/// use rfc_galois::prime_power_decomposition;
///
/// assert_eq!(prime_power_decomposition(27), Some((3, 3)));
/// assert_eq!(prime_power_decomposition(12), None);
/// ```
pub fn prime_power_decomposition(q: u32) -> Option<(u32, u32)> {
    if q < 2 {
        return None;
    }
    let mut p = 0;
    for cand in 2..=q {
        if q.is_multiple_of(cand) {
            p = cand;
            break;
        }
    }
    let mut rest = q;
    let mut k = 0;
    while rest.is_multiple_of(p) {
        rest /= p;
        k += 1;
    }
    (rest == 1).then_some((p, k))
}

/// Whether `q` is a prime power (and hence a field of order `q` exists).
pub fn is_prime_power(q: u32) -> bool {
    prime_power_decomposition(q).is_some()
}

/// The finite field GF(p^k) with explicit multiplication/inverse tables.
///
/// Elements are dense indices `0..q`. For extension fields (`k > 1`) an
/// element's base-`p` digits are the coefficients of its polynomial
/// representative modulo a monic irreducible polynomial found at
/// construction time; `0` is the additive and `1` the multiplicative
/// identity under this encoding.
///
/// # Examples
///
/// ```
/// use rfc_galois::GaloisField;
///
/// let f = GaloisField::new(8)?;
/// let x = 2; // the polynomial "x"
/// let x7 = f.pow(x, 7);
/// assert_eq!(x7, 1, "the multiplicative group of GF(8) has order 7");
/// # Ok::<(), rfc_galois::FieldError>(())
/// ```
#[derive(Clone)]
pub struct GaloisField {
    p: u32,
    k: u32,
    q: u32,
    mul_table: Vec<u16>,
    inv_table: Vec<u16>,
}

impl fmt::Debug for GaloisField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GaloisField")
            .field("p", &self.p)
            .field("k", &self.k)
            .field("order", &self.q)
            .finish()
    }
}

impl GaloisField {
    /// Constructs GF(q).
    ///
    /// # Errors
    ///
    /// [`FieldError::NotPrimePower`] when `q` is not a prime power;
    /// [`FieldError::OrderTooLarge`] when `q > MAX_ORDER`.
    pub fn new(q: u32) -> Result<Self, FieldError> {
        let (p, k) = prime_power_decomposition(q).ok_or(FieldError::NotPrimePower { order: q })?;
        if q > MAX_ORDER {
            return Err(FieldError::OrderTooLarge { order: q });
        }
        let modulus = if k == 1 {
            vec![0, 1]
        } else {
            find_irreducible(p, k)
        };
        let mut mul_table = vec![0u16; (q * q) as usize];
        for a in 0..q {
            for b in a..q {
                let prod = poly_mul_mod(a, b, p, k, &modulus);
                mul_table[(a * q + b) as usize] = prod as u16;
                mul_table[(b * q + a) as usize] = prod as u16;
            }
        }
        let mut inv_table = vec![0u16; q as usize];
        for a in 1..q {
            for b in 1..q {
                if mul_table[(a * q + b) as usize] == 1 {
                    inv_table[a as usize] = b as u16;
                    break;
                }
            }
            debug_assert_ne!(inv_table[a as usize], 0, "element {a} has no inverse");
        }
        Ok(Self {
            p,
            k,
            q,
            mul_table,
            inv_table,
        })
    }

    /// Field order `q = p^k`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.q
    }

    /// Field characteristic `p`.
    #[inline]
    pub fn characteristic(&self) -> u32 {
        self.p
    }

    /// Extension degree `k`.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.k
    }

    #[inline]
    fn check(&self, a: u32) {
        assert!(a < self.q, "element {a} out of range for GF({})", self.q);
    }

    /// Addition: digit-wise mod `p` on the base-`p` encodings.
    ///
    /// # Panics
    ///
    /// Panics if an operand is `>= q` (same for the other operations).
    pub fn add(&self, a: u32, b: u32) -> u32 {
        self.check(a);
        self.check(b);
        let (mut a, mut b) = (a, b);
        let mut out = 0;
        let mut scale = 1;
        for _ in 0..self.k {
            out += (a % self.p + b % self.p) % self.p * scale;
            a /= self.p;
            b /= self.p;
            scale *= self.p;
        }
        out
    }

    /// Additive inverse.
    pub fn neg(&self, a: u32) -> u32 {
        self.check(a);
        let mut a = a;
        let mut out = 0;
        let mut scale = 1;
        for _ in 0..self.k {
            out += (self.p - a % self.p) % self.p * scale;
            a /= self.p;
            scale *= self.p;
        }
        out
    }

    /// Subtraction `a - b`.
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        self.add(a, self.neg(b))
    }

    /// Multiplication.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        self.check(a);
        self.check(b);
        u32::from(self.mul_table[(a * self.q + b) as usize])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u32) -> u32 {
        self.check(a);
        assert_ne!(a, 0, "zero has no multiplicative inverse");
        u32::from(self.inv_table[a as usize])
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation by squaring; `pow(0, 0) == 1` by convention.
    pub fn pow(&self, a: u32, e: u32) -> u32 {
        self.check(a);
        let mut base = a;
        let mut e = e;
        let mut acc = 1;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }
}

/// Multiplies the polynomial encodings `a * b` modulo the monic `modulus`
/// (coefficient vector, lowest degree first) over Z_p.
fn poly_mul_mod(a: u32, b: u32, p: u32, k: u32, modulus: &[u32]) -> u32 {
    let da = digits(a, p, k);
    let db = digits(b, p, k);
    let mut prod = vec![0u32; (2 * k - 1) as usize];
    for (i, &ca) in da.iter().enumerate() {
        if ca == 0 {
            continue;
        }
        for (j, &cb) in db.iter().enumerate() {
            prod[i + j] = (prod[i + j] + ca * cb) % p;
        }
    }
    // Reduce modulo the monic polynomial of degree k.
    for deg in (k as usize..prod.len()).rev() {
        let coef = prod[deg];
        if coef == 0 {
            continue;
        }
        prod[deg] = 0;
        for (i, &m) in modulus.iter().enumerate().take(k as usize) {
            let idx = deg - k as usize + i;
            prod[idx] = (prod[idx] + coef * (p - m % p)) % p;
        }
    }
    let mut out = 0;
    let mut scale = 1;
    for &c in prod.iter().take(k as usize) {
        out += c * scale;
        scale *= p;
    }
    out
}

fn digits(mut a: u32, p: u32, k: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(k as usize);
    for _ in 0..k {
        out.push(a % p);
        a /= p;
    }
    out
}

/// Finds a monic irreducible polynomial of degree `k` over Z_p by
/// exhaustive search with trial division (coefficients lowest-first, the
/// leading 1 omitted from the encoding but included in the returned
/// vector).
fn find_irreducible(p: u32, k: u32) -> Vec<u32> {
    let total = p.pow(k);
    for enc in 0..total {
        let mut poly = digits(enc, p, k);
        poly.push(1); // monic leading coefficient
        if is_irreducible(&poly, p) {
            return poly;
        }
    }
    unreachable!("irreducible polynomials of every degree exist over Z_p")
}

/// Trial division irreducibility test over Z_p for small degrees.
fn is_irreducible(poly: &[u32], p: u32) -> bool {
    let k = poly.len() - 1;
    if k == 1 {
        return true;
    }
    if poly[0] == 0 {
        return false; // divisible by x
    }
    // Trial-divide by every monic polynomial of degree 1 ..= k/2.
    for d in 1..=k / 2 {
        let count = p.pow(d as u32);
        for enc in 0..count {
            let mut div = digits(enc, p, d as u32);
            div.push(1);
            if poly_divides(&div, poly, p) {
                return false;
            }
        }
    }
    true
}

/// Whether monic `div` divides `poly` over Z_p (remainder of long division
/// is zero).
fn poly_divides(div: &[u32], poly: &[u32], p: u32) -> bool {
    let mut rem: Vec<u32> = poly.to_vec();
    let d = div.len() - 1;
    while rem.len() > d {
        let lead = *rem.last().expect("nonempty remainder");
        let deg = rem.len() - 1;
        if lead != 0 {
            for (i, &c) in div.iter().enumerate() {
                let idx = deg - d + i;
                rem[idx] = (rem[idx] + lead * (p - c % p)) % p;
            }
        }
        rem.pop();
    }
    rem.iter().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_power_decompositions() {
        assert_eq!(prime_power_decomposition(2), Some((2, 1)));
        assert_eq!(prime_power_decomposition(9), Some((3, 2)));
        assert_eq!(prime_power_decomposition(32), Some((2, 5)));
        assert_eq!(prime_power_decomposition(1), None);
        assert_eq!(prime_power_decomposition(6), None);
        assert_eq!(prime_power_decomposition(100), None);
        assert!(is_prime_power(49));
        assert!(!is_prime_power(0));
    }

    #[test]
    fn rejects_non_prime_power_order() {
        assert_eq!(
            GaloisField::new(6).unwrap_err(),
            FieldError::NotPrimePower { order: 6 }
        );
    }

    #[test]
    fn rejects_oversized_order() {
        assert!(matches!(
            GaloisField::new(8192),
            Err(FieldError::OrderTooLarge { .. })
        ));
    }

    fn check_field_axioms(q: u32) {
        let f = GaloisField::new(q).unwrap();
        for a in 0..q {
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), 1, "inverse of {a} in GF({q})");
            }
            for b in 0..q {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..q {
                    assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn field_axioms_hold_for_small_prime_fields() {
        for q in [2, 3, 5, 7] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn field_axioms_hold_for_extension_fields() {
        for q in [4, 8, 9] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn multiplicative_group_order() {
        for q in [4, 5, 8, 9, 16, 25, 27] {
            let f = GaloisField::new(q).unwrap();
            for a in 1..q {
                assert_eq!(f.pow(a, q - 1), 1, "a^(q-1) == 1 in GF({q})");
            }
        }
    }

    #[test]
    fn no_zero_divisors() {
        for q in [4, 9, 16] {
            let f = GaloisField::new(q).unwrap();
            for a in 1..q {
                for b in 1..q {
                    assert_ne!(f.mul(a, b), 0, "{a} * {b} == 0 in GF({q})");
                }
            }
        }
    }

    #[test]
    fn sub_and_div_round_trip() {
        let f = GaloisField::new(27).unwrap();
        for a in 0..27 {
            for b in 0..27 {
                assert_eq!(f.add(f.sub(a, b), b), a);
                if b != 0 {
                    assert_eq!(f.mul(f.div(a, b), b), a);
                }
            }
        }
    }

    #[test]
    fn characteristic_and_degree_accessors() {
        let f = GaloisField::new(49).unwrap();
        assert_eq!(f.order(), 49);
        assert_eq!(f.characteristic(), 7);
        assert_eq!(f.degree(), 2);
        assert!(format!("{f:?}").contains("49"));
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inverse_of_zero_panics() {
        let f = GaloisField::new(5).unwrap();
        let _ = f.inv(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_element_panics() {
        let f = GaloisField::new(5).unwrap();
        let _ = f.add(5, 0);
    }
}
