//! Finite fields GF(p^k) and projective planes PG(2, q).
//!
//! The orthogonal fat-tree (OFT) baseline of the paper is defined by the
//! point–line incidence of the projective plane of order `q` (a prime
//! power). This crate provides:
//!
//! * [`GaloisField`] — table-driven arithmetic in GF(p^k) for any prime
//!   power up to [`MAX_ORDER`].
//! * [`ProjectivePlane`] — PG(2, q) as explicit point/line incidence lists
//!   (`q² + q + 1` points and lines, `q + 1` points per line).
//!
//! # Examples
//!
//! ```
//! use rfc_galois::ProjectivePlane;
//!
//! let plane = ProjectivePlane::new(3)?;
//! assert_eq!(plane.num_points(), 13);
//! assert_eq!(plane.points_of_line(0).len(), 4);
//! // Any two distinct points lie on exactly one common line.
//! assert_eq!(plane.common_lines(0, 5).len(), 1);
//! # Ok::<(), rfc_galois::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod plane;

pub use field::{is_prime_power, prime_power_decomposition, FieldError, GaloisField, MAX_ORDER};
pub use plane::ProjectivePlane;
