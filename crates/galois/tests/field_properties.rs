//! Property-based tests for GF(p^k) and PG(2, q).

use proptest::prelude::*;

use rfc_galois::{GaloisField, ProjectivePlane};

/// Prime powers small enough to exhaustively sample elements from.
const ORDERS: [u32; 8] = [2, 3, 4, 5, 7, 8, 9, 16];

fn arb_field() -> impl Strategy<Value = GaloisField> {
    proptest::sample::select(ORDERS.to_vec())
        .prop_map(|q| GaloisField::new(q).expect("prime power"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_and_multiplication_group_laws(f in arb_field(), seed in 0u64..10_000) {
        let q = f.order();
        let a = (seed % u64::from(q)) as u32;
        let b = (seed / 7 % u64::from(q)) as u32;
        let c = (seed / 49 % u64::from(q)) as u32;
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        prop_assert_eq!(f.sub(f.add(a, b), b), a);
        if b != 0 {
            prop_assert_eq!(f.div(f.mul(a, b), b), a);
        }
    }

    #[test]
    fn frobenius_is_additive(f in arb_field(), seed in 0u64..10_000) {
        // (a + b)^p == a^p + b^p in characteristic p.
        let q = f.order();
        let p = f.characteristic();
        let a = (seed % u64::from(q)) as u32;
        let b = (seed / 11 % u64::from(q)) as u32;
        prop_assert_eq!(
            f.pow(f.add(a, b), p),
            f.add(f.pow(a, p), f.pow(b, p))
        );
    }

    #[test]
    fn fermat_little_theorem(f in arb_field(), seed in 0u64..10_000) {
        let q = f.order();
        let a = (seed % u64::from(q)) as u32;
        prop_assert_eq!(f.pow(a, q), a, "a^q == a in GF(q)");
    }

    #[test]
    fn plane_duality_counts(q in proptest::sample::select(vec![2u32, 3, 4, 5])) {
        let plane = ProjectivePlane::new(q).unwrap();
        // Sum over points of lines-through equals sum over lines of
        // points-on (double counting incidences).
        let by_points: usize =
            (0..plane.num_points() as u32).map(|p| plane.lines_of_point(p).len()).sum();
        let by_lines: usize =
            (0..plane.num_lines() as u32).map(|l| plane.points_of_line(l).len()).sum();
        prop_assert_eq!(by_points, by_lines);
        prop_assert_eq!(by_points, plane.num_points() * (q as usize + 1));
    }

    #[test]
    fn any_two_points_determine_one_line(
        q in proptest::sample::select(vec![2u32, 3, 4]),
        seed in 0u64..10_000,
    ) {
        let plane = ProjectivePlane::new(q).unwrap();
        let m = plane.num_points() as u64;
        let a = (seed % m) as u32;
        let b = (seed / m % m) as u32;
        if a != b {
            prop_assert_eq!(plane.common_lines(a, b).len(), 1);
        } else {
            prop_assert_eq!(plane.common_lines(a, b).len(), q as usize + 1);
        }
    }
}
