//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    flags: BTreeMap<String, String>,
}

impl Parsed {
    /// Parses `--key value` pairs; rejects positional arguments and
    /// dangling flags.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on malformed input.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        Self::parse_with_switches(argv, &[])
    }

    /// Like [`Parsed::parse`], but flags named in `switches` take no
    /// value (`--force`); they are recorded as `"true"` and read back
    /// with [`Parsed::switch`].
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on malformed input.
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Self, CliError> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(token) = it.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            if switches.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!(
                    "flag --{key} is missing its value"
                )));
            };
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    /// True when a switch flag (see [`Parsed::parse_with_switches`]) was
    /// present.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.get(key).is_some_and(|v| v == "true")
    }

    /// Raw string flag.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional raw string flag.
    pub fn opt_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed numeric flag with default.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse `{raw}`"))),
        }
    }

    /// Optional parsed numeric flag.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the value does not parse.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse `{raw}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Parsed, CliError> {
        Parsed::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs() {
        let p = parse(&["--radix", "12", "--kind", "rfc"]).unwrap();
        assert_eq!(p.num::<usize>("radix", 0).unwrap(), 12);
        assert_eq!(p.str("kind", "x"), "rfc");
        assert_eq!(p.str("missing", "fallback"), "fallback");
        assert_eq!(p.opt_num::<u64>("seed").unwrap(), None);
    }

    #[test]
    fn rejects_positionals_and_dangling_flags() {
        assert!(parse(&["stray"]).is_err());
        assert!(parse(&["--radix"]).is_err());
    }

    #[test]
    fn switch_flags_take_no_value() {
        let argv: Vec<String> = ["--force", "--only", "fig8,costs", "--list"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = Parsed::parse_with_switches(&argv, &["force", "list"]).unwrap();
        assert!(p.switch("force"));
        assert!(p.switch("list"));
        assert!(!p.switch("missing"));
        assert_eq!(p.str("only", ""), "fig8,costs");
        // Without the switch declaration, `--force` would swallow `--only`.
        assert!(Parsed::parse_with_switches(&argv, &["list"]).is_err());
    }

    #[test]
    fn rejects_unparsable_numbers() {
        let p = parse(&["--radix", "twelve"]).unwrap();
        assert!(p.num::<usize>("radix", 0).is_err());
        assert!(p.opt_num::<usize>("radix").is_err());
    }
}
