//! The rfcgen subcommands.

use std::io::Write;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::graph::{self, traversal};
use rfc_net::parallel;
use rfc_net::sim::{RunScratch, SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::theory;
use rfc_net::topology::{expansion, FoldedClos, Rrn};
use rfc_net::UpDownRouting;

use crate::args::Parsed;
use crate::{io_err, CliError};

/// The topology a command operates on: an indirect folded Clos or the
/// direct RRN.
pub enum BuiltNetwork {
    /// Any folded Clos family member.
    Clos(FoldedClos),
    /// The Jellyfish baseline.
    Rrn(Rrn),
}

/// Builds the topology described by the common flags.
///
/// # Errors
///
/// [`CliError`] on unknown kinds or infeasible parameters.
pub fn build(parsed: &Parsed) -> Result<BuiltNetwork, CliError> {
    let kind = parsed.str("kind", "rfc");
    let radix: usize = parsed.num("radix", 12)?;
    let levels: usize = parsed.num("levels", 3)?;
    let seed: u64 = parsed.num("seed", 2017)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let net = match kind.as_str() {
        "rfc" => {
            let leaves = match parsed.opt_num::<usize>("leaves")? {
                Some(n) => n,
                None => theory::max_leaves_at_threshold(radix, levels).ok_or_else(|| {
                    CliError::Operation(format!(
                        "radix {radix} cannot support any {levels}-level RFC"
                    ))
                })?,
            };
            BuiltNetwork::Clos(FoldedClos::random(radix, leaves, levels, &mut rng)?)
        }
        "cft" => BuiltNetwork::Clos(FoldedClos::cft(radix, levels)?),
        "oft" => {
            let order: u32 = parsed.num("order", graph::vid((radix / 2).saturating_sub(1)))?;
            BuiltNetwork::Clos(FoldedClos::oft(order, levels)?)
        }
        "kary" => {
            let arity: usize = parsed.num("arity", radix / 2)?;
            BuiltNetwork::Clos(FoldedClos::kary_tree(arity, levels)?)
        }
        "rrn" => {
            let switches: usize = parsed.num("switches", 64)?;
            let degree: usize = parsed.num("degree", radix - radix / 4)?;
            let hosts: usize = parsed.num("hosts", (radix / 4).max(1))?;
            BuiltNetwork::Rrn(Rrn::new(switches, degree, hosts, &mut rng)?)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind `{other}` (rfc|cft|oft|kary|rrn)"
            )))
        }
    };
    Ok(net)
}

fn require_clos(net: BuiltNetwork, command: &str) -> Result<FoldedClos, CliError> {
    match net {
        BuiltNetwork::Clos(c) => Ok(c),
        BuiltNetwork::Rrn(_) => Err(CliError::Usage(format!(
            "`{command}` needs an indirect topology (rfc/cft/oft/kary)"
        ))),
    }
}

/// `rfcgen generate`: builds the topology and prints it in the chosen
/// format.
///
/// # Errors
///
/// [`CliError`] on build or output failure.
pub fn generate(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let format = parsed.str("format", "summary");
    match build(parsed)? {
        BuiltNetwork::Clos(clos) => match format.as_str() {
            "summary" => {
                writeln!(
                    out,
                    "{} levels={} switches={} wires={} terminals={} radix={}",
                    clos.kind(),
                    clos.num_levels(),
                    clos.num_switches(),
                    clos.num_links(),
                    clos.num_terminals(),
                    clos.radix()
                )
                .map_err(io_err)?;
                for level in 0..clos.num_levels() {
                    writeln!(out, "  level {level}: {} switches", clos.level_size(level))
                        .map_err(io_err)?;
                }
                Ok(())
            }
            "dot" => {
                writeln!(out, "graph {} {{", clos.kind()).map_err(io_err)?;
                writeln!(out, "  rankdir=BT; node [shape=box];").map_err(io_err)?;
                for level in 0..clos.num_levels() {
                    let ids: Vec<String> = (0..clos.level_size(level))
                        .map(|i| format!("s{}", clos.switch_id(level, i)))
                        .collect();
                    writeln!(out, "  {{ rank=same; {} }}", ids.join("; ")).map_err(io_err)?;
                }
                for link in clos.links() {
                    writeln!(out, "  s{} -- s{};", link.lower, link.upper).map_err(io_err)?;
                }
                writeln!(out, "}}").map_err(io_err)?;
                Ok(())
            }
            "edges" => {
                for link in clos.links() {
                    writeln!(out, "{} {}", link.lower, link.upper).map_err(io_err)?;
                }
                Ok(())
            }
            other => Err(CliError::Usage(format!(
                "unknown --format `{other}` (summary|dot|edges)"
            ))),
        },
        BuiltNetwork::Rrn(rrn) => match format.as_str() {
            "summary" => {
                writeln!(
                    out,
                    "rrn switches={} degree={} hosts={} terminals={}",
                    rrn.num_switches(),
                    rrn.degree(),
                    rrn.hosts_per_switch(),
                    rrn.num_terminals()
                )
                .map_err(io_err)?;
                Ok(())
            }
            "edges" | "dot" => {
                if format == "dot" {
                    writeln!(out, "graph rrn {{").map_err(io_err)?;
                }
                for (u, v) in rrn.links() {
                    if format == "dot" {
                        writeln!(out, "  s{u} -- s{v};").map_err(io_err)?;
                    } else {
                        writeln!(out, "{u} {v}").map_err(io_err)?;
                    }
                }
                if format == "dot" {
                    writeln!(out, "}}").map_err(io_err)?;
                }
                Ok(())
            }
            other => Err(CliError::Usage(format!("unknown --format `{other}`"))),
        },
    }
}

/// `rfcgen analyze`: structural scorecard.
///
/// # Errors
///
/// [`CliError`] on build or output failure.
pub fn analyze(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    match build(parsed)? {
        BuiltNetwork::Clos(clos) => {
            let routing = UpDownRouting::new(&clos);
            let updown = routing.has_updown_property();
            writeln!(out, "kind           : {}", clos.kind()).map_err(io_err)?;
            writeln!(out, "levels         : {}", clos.num_levels()).map_err(io_err)?;
            writeln!(out, "radix          : {}", clos.radix()).map_err(io_err)?;
            writeln!(out, "switches       : {}", clos.num_switches()).map_err(io_err)?;
            writeln!(out, "wires          : {}", clos.num_links()).map_err(io_err)?;
            writeln!(out, "terminals      : {}", clos.num_terminals()).map_err(io_err)?;
            writeln!(out, "radix-regular  : {}", clos.is_radix_regular()).map_err(io_err)?;
            writeln!(out, "up/down routing: {updown}").map_err(io_err)?;
            if !updown {
                writeln!(
                    out,
                    "  connected leaf pairs: {:.4}",
                    routing.connected_pair_fraction()
                )
                .map_err(io_err)?;
            }
            if let Some(d) = clos.leaf_diameter() {
                writeln!(out, "leaf diameter  : {d}").map_err(io_err)?;
            }
            let slack = theory::threshold_slack(clos.radix(), clos.num_leaves(), clos.num_levels());
            writeln!(
                out,
                "threshold slack: {slack:.3} (P_asym = {:.3})",
                theory::updown_probability(slack)
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "norm. bisection: >= {:.3} (lower bound)",
                theory::rfc_normalized_bisection(
                    clos.num_leaves(),
                    clos.num_levels(),
                    clos.radix()
                )
            )
            .map_err(io_err)?;
            Ok(())
        }
        BuiltNetwork::Rrn(rrn) => {
            let g = rrn.graph();
            writeln!(out, "kind     : rrn").map_err(io_err)?;
            writeln!(out, "switches : {}", rrn.num_switches()).map_err(io_err)?;
            writeln!(out, "degree   : {}", rrn.degree()).map_err(io_err)?;
            writeln!(out, "terminals: {}", rrn.num_terminals()).map_err(io_err)?;
            match traversal::diameter(&g) {
                Some(d) => writeln!(out, "diameter : {d}").map_err(io_err)?,
                None => writeln!(out, "diameter : disconnected").map_err(io_err)?,
            }
            writeln!(
                out,
                "norm. bisection: >= {:.3}",
                theory::rrn_normalized_bisection(rrn.degree(), rrn.hosts_per_switch())
            )
            .map_err(io_err)?;
            Ok(())
        }
    }
}

fn parse_traffic(name: &str) -> Result<TrafficPattern, CliError> {
    match name {
        "uniform" => Ok(TrafficPattern::Uniform),
        "random-pairing" => Ok(TrafficPattern::RandomPairing),
        "fixed-random" => Ok(TrafficPattern::FixedRandom),
        "shuffle" => Ok(TrafficPattern::Shuffle),
        "all-to-one" => Ok(TrafficPattern::AllToOne),
        other => Err(CliError::Usage(format!("unknown --traffic `{other}`"))),
    }
}

/// `rfcgen simulate`: one simulator run on the topology.
///
/// # Errors
///
/// [`CliError`] on build, routing or output failure.
pub fn simulate(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let pattern = parse_traffic(&parsed.str("traffic", "uniform"))?;
    let load: f64 = parsed.num("load", 0.5)?;
    let seed: u64 = parsed.num("seed", 2017)?;
    let mut config = SimConfig::paper_defaults();
    config.measure_cycles = parsed.num("cycles", config.measure_cycles)?;
    config.warmup_cycles = parsed.num("warmup", config.warmup_cycles)?;
    config.router_latency = parsed.num("router-latency", config.router_latency)?;
    config.valiant_routing = parsed.str("valiant", "off") == "on";

    let clos = require_clos(build(parsed)?, "simulate")?;
    let routing = UpDownRouting::new(&clos);
    if !routing.has_updown_property() {
        writeln!(
            out,
            "warning: topology lacks the full up/down property \
             ({:.4} of leaf pairs connected); unroutable packets are refused",
            routing.connected_pair_fraction()
        )
        .map_err(io_err)?;
    }
    let sim_net = SimNetwork::from_folded_clos(&clos);
    let sim = Simulation::new(&sim_net, &routing, config);
    let r = sim.run(pattern, load, seed);
    writeln!(out, "traffic          : {pattern}").map_err(io_err)?;
    writeln!(out, "offered load     : {:.3}", r.offered_load).map_err(io_err)?;
    writeln!(out, "accepted load    : {:.3}", r.accepted_load).map_err(io_err)?;
    writeln!(out, "mean latency     : {:.1} cycles", r.avg_latency).map_err(io_err)?;
    writeln!(
        out,
        "latency p50/95/99: {:.0} / {:.0} / {:.0}",
        r.latency_p50, r.latency_p95, r.latency_p99
    )
    .map_err(io_err)?;
    writeln!(out, "delivered packets: {}", r.delivered_packets).map_err(io_err)?;
    writeln!(out, "refused packets  : {}", r.refused_packets).map_err(io_err)?;
    Ok(())
}

/// `rfcgen sweep`: a load sweep over one or more traffic patterns, one
/// simulator run per `(traffic, load)` point, fanned out over the
/// worker pool. Output is identical at any `--threads` value.
///
/// # Errors
///
/// [`CliError`] on build, routing or output failure.
pub fn sweep(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let patterns: Vec<TrafficPattern> = parsed
        .str("traffic", "uniform")
        .split(',')
        .map(|name| parse_traffic(name.trim()))
        .collect::<Result<_, _>>()?;
    let loads: Vec<f64> = match parsed.opt_str("loads") {
        Some(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("--loads: cannot parse `{tok}`")))
            })
            .collect::<Result<_, _>>()?,
        None => (1..=10).map(|i| f64::from(i) / 10.0).collect(),
    };
    if loads.is_empty() || patterns.is_empty() {
        return Err(CliError::Usage(
            "sweep needs at least one traffic pattern and one load".into(),
        ));
    }
    let seed: u64 = parsed.num("seed", 2017)?;
    let mut config = SimConfig::paper_defaults();
    config.measure_cycles = parsed.num("cycles", config.measure_cycles)?;
    config.warmup_cycles = parsed.num("warmup", config.warmup_cycles)?;
    config.router_latency = parsed.num("router-latency", config.router_latency)?;
    config.valiant_routing = parsed.str("valiant", "off") == "on";

    let clos = require_clos(build(parsed)?, "sweep")?;
    let routing = UpDownRouting::new(&clos);
    let sim_net = SimNetwork::from_folded_clos(&clos);
    let sim = Simulation::new(&sim_net, &routing, config);

    let mut jobs = Vec::with_capacity(patterns.len() * loads.len());
    for &pattern in &patterns {
        for &load in &loads {
            jobs.push((jobs.len() as u64, pattern, load));
        }
    }
    // Wall-clock here times the sweep for the progress footer only; it
    // never feeds a result.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let results = parallel::map_init(jobs, RunScratch::new, |scratch, (index, pattern, load)| {
        (
            pattern,
            sim.run_scratch(pattern, load, parallel::child_seed(seed, index), scratch),
        )
    });
    let elapsed = start.elapsed();

    writeln!(out, "traffic offered accepted latency_cycles latency_p99").map_err(io_err)?;
    for (pattern, r) in results {
        writeln!(
            out,
            "{pattern} {:.3} {:.3} {:.1} {:.0}",
            r.offered_load, r.accepted_load, r.avg_latency, r.latency_p99
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "# {} runs in {:.2}s on {} thread(s)",
        patterns.len() * loads.len(),
        elapsed.as_secs_f64(),
        parallel::current_threads()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `rfcgen expand`: grows an RFC and reports the rewiring bill.
///
/// # Errors
///
/// [`CliError`] on build, expansion or output failure.
pub fn expand(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let steps: usize = parsed.num("steps", 1)?;
    let seed: u64 = parsed.num("seed", 2017)?;
    let mut clos = require_clos(build(parsed)?, "expand")?;
    let links_before = clos.num_links();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEC5A_11D0);
    let report = expansion::expand_rfc(&mut clos, steps, &mut rng)?;
    writeln!(out, "steps            : {steps}").map_err(io_err)?;
    writeln!(out, "added switches   : {}", report.added_switches).map_err(io_err)?;
    writeln!(out, "added terminals  : {}", report.added_terminals).map_err(io_err)?;
    writeln!(
        out,
        "rewired links    : {} ({:.2}% of the pre-growth {links_before})",
        report.rewired_links,
        100.0 * report.rewired_links as f64 / links_before as f64
    )
    .map_err(io_err)?;
    writeln!(out, "new wires        : {}", report.new_links).map_err(io_err)?;
    let updown = UpDownRouting::new(&clos).has_updown_property();
    writeln!(out, "up/down after    : {updown}").map_err(io_err)?;
    Ok(())
}

/// `rfcgen threshold`: Theorem 4.2 sizing summary.
///
/// # Errors
///
/// [`CliError`] on bad flags or output failure.
pub fn threshold(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let radix: usize = parsed.num("radix", 12)?;
    let levels: usize = parsed.num("levels", 3)?;
    let Some(n1) = theory::max_leaves_at_threshold(radix, levels) else {
        return Err(CliError::Operation(format!(
            "radix {radix} cannot support any {levels}-level RFC"
        )));
    };
    writeln!(
        out,
        "radix {radix}, {levels} levels (diameter {})",
        2 * (levels - 1)
    )
    .map_err(io_err)?;
    writeln!(out, "max N1 leaves at threshold : {n1}").map_err(io_err)?;
    writeln!(out, "max terminals              : {}", n1 * radix / 2).map_err(io_err)?;
    writeln!(
        out,
        "switches / wires           : {} / {}",
        (levels - 1) * n1 + n1 / 2,
        (levels - 1) * n1 * radix / 2
    )
    .map_err(io_err)?;
    let slack = theory::threshold_slack(radix, n1, levels);
    writeln!(
        out,
        "slack at that size         : x = {slack:.3}, asymptotic P = {:.3}",
        theory::updown_probability(slack)
    )
    .map_err(io_err)?;
    if levels == 2 {
        writeln!(
            out,
            "finite-size P              : {:.3}",
            theory::two_level_updown_probability(radix, n1)
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "CFT comparison             : {} terminals at the same radix/levels",
        theory::cft_terminals(radix, levels)
    )
    .map_err(io_err)?;
    Ok(())
}

/// `rfcgen repro`: run the registered evaluation experiments into a
/// provenance-stamped run directory (see
/// [`rfc_net::experiments::runner`]).
///
/// `--list` enumerates the registry; `--only a,b` subsets it; `--force`
/// re-runs experiments whose artifacts already verify. Failures are
/// reported per experiment and the remaining experiments still run; the
/// command errors only after everything finished.
///
/// # Errors
///
/// [`CliError`] on bad flags, unknown experiment names, or when any
/// experiment failed.
pub fn repro(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    use rfc_net::experiments::registry;
    use rfc_net::experiments::runner::{self, Outcome, RunOptions};
    use rfc_net::scenarios::Scale;

    if parsed.switch("list") {
        writeln!(out, "{:<10}  {:<16}  description", "name", "paper").map_err(io_err)?;
        for exp in registry::all() {
            writeln!(
                out,
                "{:<10}  {:<16}  {}",
                exp.name(),
                exp.paper_anchor(),
                exp.description()
            )
            .map_err(io_err)?;
        }
        return Ok(());
    }

    let scale = match parsed.opt_str("scale") {
        None => Scale::from_env(),
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some("paper") => Scale::Paper,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--scale: expected small|medium|paper, got `{other}`"
            )))
        }
    };
    let seed: u64 = match parsed.opt_num("seed")? {
        Some(s) => s,
        None => std::env::var("RFC_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2017),
    };
    let mut sim = runner::sim_for_scale(scale);
    sim.measure_cycles = parsed.num("cycles", sim.measure_cycles)?;
    sim.warmup_cycles = parsed.num("warmup", sim.warmup_cycles)?;

    let mut opts = RunOptions::new(scale, seed, sim);
    opts.trials = parsed.opt_num("trials")?;
    opts.force = parsed.switch("force");
    opts.only = parsed.opt_str("only").map(|raw| {
        raw.split(',')
            .map(|tok| tok.trim().to_string())
            .filter(|tok| !tok.is_empty())
            .collect()
    });
    if let Some(dir) = parsed.opt_str("out-dir") {
        opts.root = dir.into();
    }

    let summary = runner::run(&opts).map_err(|e| CliError::Operation(e.to_string()))?;
    let (mut ran, mut skipped) = (0usize, 0usize);
    for (_, outcome) in &summary.outcomes {
        match outcome {
            Outcome::Ran => ran += 1,
            Outcome::Skipped => skipped += 1,
            Outcome::Failed(_) => {}
        }
    }
    writeln!(
        out,
        "run {}: {} ran, {} skipped, {} failed -> {}",
        summary.run_id,
        ran,
        skipped,
        summary.failures().len(),
        summary.run_dir.display()
    )
    .map_err(io_err)?;
    let failures = summary.failures();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::Operation(format!(
            "{} experiment(s) failed: {}",
            failures.len(),
            failures.join(", ")
        )))
    }
}
