//! `rfcgen` binary entry point; all logic lives in the library half.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = rfcgen::run(&argv, &mut stdout) {
        eprintln!("rfcgen: {e}");
        std::process::exit(match e {
            rfcgen::CliError::Usage(_) => 2,
            rfcgen::CliError::Operation(_) => 1,
        });
    }
}
