//! Implementation of the `rfcgen` command-line tool.
//!
//! `rfcgen` exposes the workspace's topology generators, analyses, and
//! the cycle-level simulator as a single binary, so a datacenter
//! architect can size, generate, inspect, export, and stress a random
//! folded Clos without writing Rust:
//!
//! ```text
//! rfcgen threshold --radix 36 --levels 3
//! rfcgen generate  --kind rfc --radix 12 --leaves 72 --levels 3 --format dot
//! rfcgen analyze   --kind cft --radix 12 --levels 3
//! rfcgen simulate  --kind rfc --radix 12 --leaves 72 --levels 3 \
//!                  --traffic random-pairing --load 0.8
//! rfcgen expand    --kind rfc --radix 12 --leaves 48 --levels 3 --steps 4
//! ```
//!
//! The library half exists so the argument parsing and command logic
//! are unit-testable; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (message already explains the problem).
    Usage(String),
    /// A topology/simulation operation failed.
    Operation(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Operation(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<rfc_net::topology::TopologyError> for CliError {
    fn from(e: rfc_net::topology::TopologyError) -> Self {
        CliError::Operation(e.to_string())
    }
}

/// Runs the CLI against an argument vector (excluding the program
/// name), writing human-readable output through `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad arguments or failed operations.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(USAGE.trim().to_string()));
    };
    // `repro` has valueless switch flags; everything else is strict
    // `--key value` pairs.
    let parsed = if command == "repro" {
        args::Parsed::parse_with_switches(rest, &["list", "force"])?
    } else {
        args::Parsed::parse(rest)?
    };
    // Common flag: worker threads for parallel stages (overrides the
    // RFC_THREADS environment variable; default: all cores).
    rfc_net::parallel::set_threads(parsed.opt_num::<usize>("threads")?);
    // Common flag: shards per simulation run (overrides the RFC_SHARDS
    // environment variable; default: 1). Results are byte-identical at
    // any shard count, so this is purely a speed knob.
    rfc_net::parallel::set_shards(parsed.opt_num::<usize>("shards")?);
    match command.as_str() {
        "generate" => commands::generate(&parsed, out),
        "analyze" => commands::analyze(&parsed, out),
        "simulate" => commands::simulate(&parsed, out),
        "sweep" => commands::sweep(&parsed, out),
        "expand" => commands::expand(&parsed, out),
        "threshold" => commands::threshold(&parsed, out),
        "repro" => commands::repro(&parsed, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", USAGE.trim()).map_err(io_err)?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

pub(crate) fn io_err(e: std::io::Error) -> CliError {
    CliError::Operation(format!("write failed: {e}"))
}

/// The help text.
pub const USAGE: &str = r#"
rfcgen — random folded Clos topology toolkit

USAGE:
    rfcgen <COMMAND> [--flag value]...

COMMANDS:
    generate    build a topology and print it (--format summary|dot|edges)
    analyze     structural scorecard: cost, diameter, up/down property, bounds
    simulate    run the cycle-level simulator on the topology
    sweep       parallel load sweep: one simulator run per (traffic, load) point
    expand      grow an RFC incrementally and report rewiring
    threshold   Theorem 4.2 sizing for a radix/levels pair
    repro       reproduce the paper's evaluation (registry of 14 experiments)
    help        show this text

COMMON FLAGS:
    --threads   worker threads for parallel stages    (default: RFC_THREADS
                environment variable, else all cores; results are identical
                at any thread count)
    --shards    shards per simulation run: the switches are partitioned
                into N contiguous shards advanced by N workers in lockstep
                (default: RFC_SHARDS environment variable, else 1; results
                are byte-identical at any shard count)

TOPOLOGY FLAGS (generate/analyze/simulate/expand):
    --kind      rfc | cft | oft | kary | rrn        (default rfc)
    --radix     switch radix                        (default 12)
    --leaves    N1 leaf switches (rfc)              (default: threshold max)
    --levels    levels l                            (default 3)
    --order     OFT order q                         (default radix/2 - 1)
    --arity     k for k-ary trees                   (default radix/2)
    --switches  N for rrn                           (default 64)
    --degree    network degree for rrn              (default radix - radix/4)
    --hosts     hosts per switch for rrn            (default radix/4)
    --seed      RNG seed                            (default 2017)

SIMULATION FLAGS (simulate/sweep):
    --traffic   uniform | random-pairing | fixed-random | shuffle | all-to-one
                (sweep: comma-separated list accepted)
    --load      offered phits/node/cycle            (default 0.5; simulate only)
    --loads     comma-separated offered loads       (default 0.1,0.2,…,1.0;
                sweep only)
    --cycles    measured cycles                     (default 10000)
    --warmup    warmup cycles                       (default 5000)
    --router-latency  extra pipeline cycles per hop (default 0)
    --valiant   on | off                            (default off)

EXPANSION FLAGS (expand):
    --steps     minimal upgrade steps               (default 1)

REPRO FLAGS (repro):
    --list      enumerate the registered experiments and exit
    --only      comma-separated experiment names    (default: all 14)
    --force     re-run experiments whose artifacts already verify
    --scale     small | medium | paper              (default: RFC_SCALE, else medium)
    --seed      run seed                            (default: RFC_SEED, else 2017)
    --trials    Monte-Carlo trial override          (default: per experiment)
    --cycles    measured cycles override            (default: per scale)
    --warmup    warmup cycles override              (default: per scale)
    --out-dir   artifact root                       (default target/experiments)
                artifacts land in <out-dir>/<run-id>/ with a manifest.json;
                reruns with identical parameters skip verified experiments
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_capture(&["help"]).unwrap();
        assert!(text.contains("COMMANDS"));
    }

    #[test]
    fn empty_argv_is_a_usage_error() {
        assert!(matches!(run(&[], &mut Vec::new()), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run_capture(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn threshold_command_reports_sizing() {
        let text = run_capture(&["threshold", "--radix", "36", "--levels", "3"]).unwrap();
        assert!(text.contains("11254") || text.contains("11,254") || text.contains("N1"));
        assert!(text.contains("202"));
    }

    #[test]
    fn generate_summary_and_dot() {
        let text = run_capture(&[
            "generate", "--kind", "rfc", "--radix", "8", "--leaves", "16", "--levels", "2",
        ])
        .unwrap();
        assert!(text.contains("switches"));
        let dot = run_capture(&[
            "generate", "--kind", "cft", "--radix", "4", "--levels", "2", "--format", "dot",
        ])
        .unwrap();
        assert!(dot.contains("graph") && dot.contains("--"));
        let edges = run_capture(&[
            "generate", "--kind", "cft", "--radix", "4", "--levels", "2", "--format", "edges",
        ])
        .unwrap();
        assert!(edges.lines().count() >= 8);
    }

    #[test]
    fn analyze_reports_updown_property() {
        let text =
            run_capture(&["analyze", "--kind", "cft", "--radix", "8", "--levels", "3"]).unwrap();
        assert!(text.contains("up/down"));
        assert!(text.contains("true"));
    }

    #[test]
    fn simulate_runs_quickly_at_small_size() {
        let text = run_capture(&[
            "simulate", "--kind", "cft", "--radix", "4", "--levels", "2", "--load", "0.3",
            "--cycles", "500", "--warmup", "100",
        ])
        .unwrap();
        assert!(text.contains("accepted"));
    }

    #[test]
    fn sweep_prints_one_row_per_point_and_elapsed() {
        let text = run_capture(&[
            "sweep",
            "--kind",
            "cft",
            "--radix",
            "4",
            "--levels",
            "2",
            "--traffic",
            "uniform,shuffle",
            "--loads",
            "0.2,0.4",
            "--cycles",
            "300",
            "--warmup",
            "100",
        ])
        .unwrap();
        let rows: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("traffic"))
            .collect();
        assert_eq!(rows.len(), 4, "2 patterns x 2 loads: {text}");
        assert!(text.contains("thread(s)"), "elapsed line missing: {text}");
    }

    #[test]
    fn sweep_output_is_identical_at_any_thread_count() {
        let base = &[
            "sweep", "--kind", "cft", "--radix", "4", "--levels", "2", "--loads", "0.3,0.6",
            "--cycles", "300", "--warmup", "100",
        ];
        let strip_elapsed = |text: String| -> String {
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(&["--threads", "1"]);
            strip_elapsed(run_capture(&argv).unwrap())
        };
        let four = {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(&["--threads", "4"]);
            strip_elapsed(run_capture(&argv).unwrap())
        };
        rfc_net::parallel::set_threads(None);
        assert_eq!(one, four);
    }

    #[test]
    fn simulate_output_is_identical_at_any_shard_count() {
        let base = &[
            "simulate", "--kind", "cft", "--radix", "6", "--levels", "3", "--load", "0.5",
            "--cycles", "500", "--warmup", "100",
        ];
        let at = |shards: &str| {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend_from_slice(&["--shards", shards]);
            run_capture(&argv).unwrap()
        };
        let one = at("1");
        let four = at("4");
        rfc_net::parallel::set_shards(None);
        assert_eq!(one, four, "simulate output moved with the shard count");
    }

    #[test]
    fn expand_reports_rewiring() {
        let text = run_capture(&[
            "expand", "--kind", "rfc", "--radix", "8", "--leaves", "32", "--levels", "3",
            "--steps", "2",
        ])
        .unwrap();
        assert!(text.contains("rewired"));
    }

    #[test]
    fn bad_flag_value_is_a_usage_error() {
        let err = run_capture(&["generate", "--radix", "not-a-number"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn repro_list_enumerates_the_full_registry() {
        let text = run_capture(&["repro", "--list"]).unwrap();
        for exp in rfc_net::experiments::registry::all() {
            assert!(
                text.lines()
                    .any(|l| l.split_whitespace().next() == Some(exp.name())),
                "`repro --list` is missing experiment `{}`:\n{text}",
                exp.name()
            );
        }
        assert_eq!(
            text.lines().filter(|l| !l.trim().is_empty()).count(),
            rfc_net::experiments::registry::all().len() + 1,
            "header plus one line per experiment expected:\n{text}"
        );
    }

    #[test]
    fn repro_rejects_bad_scale_and_unknown_experiment() {
        let err = run_capture(&["repro", "--scale", "galactic"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = run_capture(&["repro", "--only", "fig99", "--scale", "small"]).unwrap_err();
        assert!(err.to_string().contains("fig99"), "{err}");
    }
}
