//! Exhaustive model checking of the [`rfc_parallel::SpinBarrier`]
//! generation protocol with the in-tree `loomlite` checker (DESIGN.md
//! §14).
//!
//! The barrier's `wait` compiles down to four atomic steps — load the
//! generation, increment `arrived`, and (for the last arrival) reset
//! `arrived` then bump the generation — plus a spin on the generation
//! for everyone else. The models below replay exactly those steps at
//! sequential-consistency granularity and let the checker explore every
//! schedule of 2 and 3 parties over 2 rounds, proving:
//!
//! * no deadlock and no lost wakeup (every schedule terminates),
//! * no early release (nobody leaves round *r* before every party has
//!   done its round-*r* work),
//! * no double release (the generation never outruns the round count),
//! * the poison protocol frees survivors of a panicking peer, and the
//!   pre-poison protocol provably hung them (the regression the
//!   [`rfc_parallel::PoisonGuard`] fix closed).
//!
//! Negative controls mutate the protocol (release steps swapped, poison
//! check removed) and assert the checker catches the bug — evidence the
//! proofs above are not vacuous.

use loomlite::{check, Explored, ModelError, Step, Thread, DONE};

/// Shared state of the barrier model: the two barrier atomics plus
/// per-party observables the invariants read.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Barrier {
    /// `SpinBarrier::arrived` (parties checked in this generation).
    arrived: u8,
    /// `SpinBarrier::generation` (release counter waiters spin on).
    generation: u8,
    /// `SpinBarrier::poisoned`, set by a panicking party's guard.
    poisoned: bool,
    /// Per party: the generation loaded on entry to the current round.
    observed: Vec<u8>,
    /// Per party: units of pre-barrier work done (bumped entering a
    /// round, before touching the barrier).
    work: Vec<u8>,
    /// Per party: rounds fully completed (bumped on barrier exit).
    round: Vec<u8>,
}

impl Barrier {
    fn new(parties: usize) -> Self {
        Barrier {
            observed: vec![0; parties],
            work: vec![0; parties],
            round: vec![0; parties],
            ..Barrier::default()
        }
    }
}

/// pc encoding: `round * 10 + phase`. Phases within one round:
/// 0 work, 1 load generation, 2 increment arrived (branch), 3+4 the
/// last arrival's release pair, 5 the waiters' spin guard.
const PHASES: u32 = 10;

/// Exit a round: advance to the next round's work phase or finish.
fn exit_round(s: &mut Barrier, who: usize, pc: &mut u32, round: u32, rounds: u32) -> Step {
    s.round[who] += 1;
    if round + 1 == rounds {
        Step::Done
    } else {
        *pc = (round + 1) * PHASES;
        Step::Ran
    }
}

/// One barrier party looping `rounds` times. `swap_release` is the
/// negative control: it performs the last arrival's two release steps
/// in the wrong order (generation bump before the arrived reset),
/// which must be caught as a lost arrival.
fn party(
    who: usize,
    parties: u8,
    rounds: u32,
    swap_release: bool,
) -> impl Fn(&mut Barrier, &mut u32) -> Step {
    move |s, pc| {
        let round = *pc / PHASES;
        match *pc % PHASES {
            0 => {
                s.work[who] += 1;
                *pc += 1;
                Step::Ran
            }
            1 => {
                // gen = self.generation.load(Acquire)
                s.observed[who] = s.generation;
                *pc += 1;
                Step::Ran
            }
            2 => {
                // self.arrived.fetch_add(1, AcqRel) + 1 == self.parties
                s.arrived += 1;
                *pc = round * PHASES + if s.arrived == parties { 3 } else { 5 };
                Step::Ran
            }
            3 => {
                // Last arrival, first release step.
                if swap_release {
                    s.generation += 1;
                } else {
                    s.arrived = 0;
                }
                *pc += 1;
                Step::Ran
            }
            4 => {
                // Last arrival, second release step, then exit.
                if swap_release {
                    s.arrived = 0;
                } else {
                    s.generation += 1;
                }
                exit_round(s, who, pc, round, rounds)
            }
            _ => {
                // while self.generation.load(Acquire) == gen { spin }
                if s.generation == s.observed[who] {
                    return Step::Blocked;
                }
                exit_round(s, who, pc, round, rounds)
            }
        }
    }
}

/// The barrier's safety invariants, checked at every reachable state.
fn barrier_invariant(rounds: u32) -> impl Fn(&Barrier, &[u32]) -> Result<(), String> {
    move |s, pcs| {
        let max_round = s.round.iter().copied().max().unwrap_or(0);
        let min_round = s.round.iter().copied().min().unwrap_or(0);
        if max_round - min_round > 1 {
            return Err(format!(
                "lockstep broken: round spread {:?} exceeds 1",
                s.round
            ));
        }
        for (who, &r) in s.round.iter().enumerate() {
            if let Some(laggard) = s.work.iter().position(|&w| w < r) {
                return Err(format!(
                    "early release: party {who} finished round {r} \
                     but party {laggard} has only done {} work steps",
                    s.work[laggard]
                ));
            }
        }
        if u32::from(s.generation) > rounds {
            return Err(format!(
                "double release: generation {} after at most {rounds} rounds",
                s.generation
            ));
        }
        if pcs.iter().all(|&pc| pc == DONE) {
            if s.round.iter().any(|&r| u32::from(r) != rounds) {
                return Err(format!("a party skipped a round: {:?}", s.round));
            }
            if s.arrived != 0 {
                return Err(format!("arrived count leaked: {}", s.arrived));
            }
        }
        Ok(())
    }
}

/// Checks `parties` correct barrier parties over `rounds` rounds.
fn check_barrier(parties: usize, rounds: u32) -> Result<Explored, ModelError> {
    let threads: Vec<Thread<'_, Barrier>> = (0..parties)
        .map(|who| Box::new(party(who, parties as u8, rounds, false)) as Thread<'_, Barrier>)
        .collect();
    check(Barrier::new(parties), &threads, barrier_invariant(rounds))
}

#[test]
fn two_party_barrier_protocol_is_sound() {
    let explored = check_barrier(2, 2).expect("2-party barrier must be deadlock-free");
    assert!(
        explored.terminal_states >= 1,
        "every schedule must terminate"
    );
    assert!(explored.states > 10, "the model must actually interleave");
}

#[test]
fn three_party_barrier_protocol_is_sound() {
    let explored = check_barrier(3, 2).expect("3-party barrier must be deadlock-free");
    assert!(
        explored.terminal_states >= 1,
        "every schedule must terminate"
    );
}

/// Negative control: releasing the generation before resetting the
/// arrived count lets a fast next-round arrival be clobbered by the
/// reset — a lost arrival the checker must find (as a deadlock or a
/// broken invariant, depending on which schedule DFS hits first).
#[test]
fn swapped_release_order_is_caught() {
    let threads: Vec<Thread<'_, Barrier>> = (0..2)
        .map(|who| Box::new(party(who, 2, 2, true)) as Thread<'_, Barrier>)
        .collect();
    let err = check(Barrier::new(2), &threads, barrier_invariant(2))
        .expect_err("the swapped release order is a real protocol bug");
    assert!(
        matches!(
            err,
            ModelError::Deadlock { .. } | ModelError::Invariant { .. }
        ),
        "unexpected failure mode: {err}"
    );
}

/// A survivor party: one normal round, then a second round whose spin
/// guard honors (or, for the negative control, ignores) the poison
/// flag — exactly the fallback path `SpinBarrier::wait` runs after its
/// spin burst.
fn survivor(
    who: usize,
    parties: u8,
    check_poison: bool,
) -> impl Fn(&mut Barrier, &mut u32) -> Step {
    move |s, pc| {
        let round = *pc / PHASES;
        match *pc % PHASES {
            0 => {
                s.work[who] += 1;
                *pc += 1;
                Step::Ran
            }
            1 => {
                s.observed[who] = s.generation;
                *pc += 1;
                Step::Ran
            }
            2 => {
                s.arrived += 1;
                *pc = round * PHASES + if s.arrived == parties { 3 } else { 5 };
                Step::Ran
            }
            3 => {
                s.arrived = 0;
                *pc += 1;
                Step::Ran
            }
            4 => {
                s.generation += 1;
                exit_round(s, who, pc, round, 2)
            }
            _ => {
                if s.generation != s.observed[who] {
                    return exit_round(s, who, pc, round, 2);
                }
                if check_poison && s.poisoned {
                    // assert!(!self.poisoned...) fires: the party
                    // unwinds instead of spinning forever.
                    return Step::Done;
                }
                Step::Blocked
            }
        }
    }
}

/// A party that panics between barrier phases: one normal round, then
/// its `PoisonGuard` drops mid-unwind and poisons the barrier.
fn panicker(who: usize, parties: u8) -> impl Fn(&mut Barrier, &mut u32) -> Step {
    move |s, pc| {
        let round = *pc / PHASES;
        match *pc % PHASES {
            0 => {
                s.work[who] += 1;
                *pc += 1;
                Step::Ran
            }
            1 => {
                s.observed[who] = s.generation;
                *pc += 1;
                Step::Ran
            }
            2 => {
                s.arrived += 1;
                *pc = round * PHASES + if s.arrived == parties { 3 } else { 5 };
                Step::Ran
            }
            3 => {
                s.arrived = 0;
                *pc += 1;
                Step::Ran
            }
            4 => {
                s.generation += 1;
                s.round[who] += 1;
                // Panic after the round-0 barrier: poison and unwind.
                s.poisoned = true;
                Step::Done
            }
            _ => {
                if s.generation == s.observed[who] {
                    return Step::Blocked;
                }
                s.round[who] += 1;
                s.poisoned = true;
                Step::Done
            }
        }
    }
}

/// Poison models reuse only the no-deadlock guarantee; the lockstep
/// invariants do not apply once a party has died mid-protocol.
fn no_invariant(_: &Barrier, _: &[u32]) -> Result<(), String> {
    Ok(())
}

/// With the poison flag, survivors of a panicking peer always unwind:
/// no schedule of 3 parties (one dying after round 0) deadlocks.
#[test]
fn poisoned_barrier_frees_the_survivors() {
    let threads: Vec<Thread<'_, Barrier>> = vec![
        Box::new(panicker(0, 3)),
        Box::new(survivor(1, 3, true)),
        Box::new(survivor(2, 3, true)),
    ];
    let explored = check(Barrier::new(3), &threads, no_invariant)
        .expect("poison must free every waiting survivor");
    assert!(explored.terminal_states >= 1);
}

/// Negative control — the pre-fix barrier: without the poison check the
/// survivors spin on a generation bump that can never come, and the
/// checker proves the hang (this is the regression
/// `panicking_worker_poisons_the_barrier` guards in src/lib.rs).
#[test]
fn unpoisoned_abandonment_is_a_proven_deadlock() {
    let threads: Vec<Thread<'_, Barrier>> = vec![
        Box::new(panicker(0, 3)),
        Box::new(survivor(1, 3, false)),
        Box::new(survivor(2, 3, false)),
    ];
    let err = check(Barrier::new(3), &threads, no_invariant)
        .expect_err("abandoning a poison-less barrier must hang its waiters");
    assert!(
        matches!(err, ModelError::Deadlock { .. }),
        "expected a deadlock, got {err}"
    );
}
