//! A minimal scoped worker pool for embarrassingly parallel stages.
//!
//! Every expensive experiment driver in `rfc-net` is a loop of
//! independent jobs: one simulator run per `(pattern, load)` point, one
//! Monte-Carlo trial per repetition, one removal order per sample — and
//! the setup-heavy builds lower in the stack (routing reachability
//! tables, the simulator's ECMP candidate table) are loops of
//! independent per-switch chunks. This crate fans such loops out across
//! OS threads with zero external dependencies: [`std::thread::scope`]
//! plus an atomic work counter. It sits at the bottom of the workspace
//! dependency graph (no deps of its own) so every layer — `routing`,
//! `sim`, and the `rfc-net` facade, which re-exports it as
//! `rfc_net::parallel` — can share the one pool configuration.
//!
//! # Determinism
//!
//! Parallelism must not change results. Two rules make that hold:
//!
//! 1. Jobs never share an RNG. A driver draws one base seed from its
//!    caller-provided generator and derives an independent child seed
//!    per job with [`child_seed`] (a SplitMix64 finalizer over the job
//!    index), so the random stream a job sees depends only on
//!    `(base, index)` — never on which thread ran it or in what order.
//! 2. Results are written into a slot addressed by job index, so the
//!    output vector order matches the serial loop.
//!
//! Consequently `map` with 1 thread and with N threads produce
//! byte-identical output, which `crates/core/tests/parallel_determinism.rs`
//! locks in.
//!
//! # Thread count
//!
//! Resolution order: [`set_threads`] override (the `rfcgen --threads`
//! flag), then the `RFC_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. A value of 1 runs jobs inline
//! on the caller's thread with no pool at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunk size for work claiming: workers grab jobs in batches of this
/// many to keep contention on the shared counter negligible while still
/// stealing well when job costs are skewed (e.g. high-load simulator
/// runs take far longer than low-load ones).
const CHUNK: usize = 4;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for all subsequent [`map`] calls.
///
/// `Some(0)` is treated as unset. This is what `rfcgen --threads` and
/// the bench binaries call; it takes precedence over `RFC_THREADS`.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`map`] will use right now.
///
/// Resolution order: [`set_threads`] override, `RFC_THREADS`
/// environment variable, [`std::thread::available_parallelism`] (1 when
/// even that is unavailable).
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("RFC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the RNG seed for job `index` from a per-stage `base` seed.
///
/// SplitMix64: the standard 64-bit finalizer over `base + (index+1)·γ`.
/// Consecutive indices map to statistically independent seeds, and the
/// result depends only on `(base, index)`, which is what makes parallel
/// schedules reproducible. Drivers must use this (rather than handing
/// jobs slices of one shared stream) for every parallelized loop.
#[must_use]
pub fn child_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every job, in parallel, preserving input order.
///
/// Equivalent to `jobs.into_iter().map(f).collect()` but fanned out
/// over [`current_threads`] workers. `f` must be deterministic in its
/// argument alone (seed any randomness via [`child_seed`]); under that
/// contract the output is identical at every thread count.
pub fn map<T, U, F>(jobs: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    map_init(jobs, || (), |(), job| f(job))
}

/// Like [`map`], but each worker first builds a reusable state with
/// `init` and threads it through its jobs.
///
/// This is how the sweep drivers share one `RunScratch` (the
/// simulator's preallocated queues and event wheel) across all runs a
/// worker executes, instead of reallocating per job.
pub fn map_init<T, U, S, F, I>(jobs: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n_jobs = jobs.len();
    let threads = current_threads().min(n_jobs).max(1);

    if threads == 1 {
        let mut state = init();
        return jobs.into_iter().map(|job| f(&mut state, job)).collect();
    }

    // Job intake: each slot is taken exactly once by the worker that
    // claims its index. Mutex<Option<T>> keeps this safe without
    // `unsafe`; the lock is uncontended by construction (a slot has
    // exactly one claimant) so the cost is one atomic pair per job,
    // dwarfed by any simulator run or Monte-Carlo trial.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);

    let mut per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n_jobs {
                            break;
                        }
                        let end = (start + CHUNK).min(n_jobs);
                        for (idx, slot) in slots.iter().enumerate().take(end).skip(start) {
                            // A slot is locked exactly once (by its sole
                            // claimant), so poisoning can only be residue
                            // of a panic elsewhere — recover the job
                            // rather than cascade the panic.
                            let job = slot
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take()
                                .expect("job claimed twice");
                            done.push((idx, f(&mut state, job)));
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a worker's panic with its original payload
                // instead of wrapping it in a second, less informative
                // `expect` panic.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    // Reassemble in job order.
    let mut out: Vec<Option<U>> = Vec::with_capacity(n_jobs);
    out.resize_with(n_jobs, || None);
    for worker in &mut per_worker {
        for (idx, value) in worker.drain(..) {
            out[idx] = Some(value);
        }
    }
    out.into_iter()
        .map(|v| v.expect("job produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Takes the override lock, recovering from poison: a failed
    /// sibling test must not cascade into every other override test.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn map_preserves_order() {
        let _g = override_guard();
        set_threads(Some(4));
        let out = map((0..100u64).collect(), |x| x * x);
        set_threads(None);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let _g = override_guard();
        let jobs: Vec<u64> = (0..37).collect();
        set_threads(Some(1));
        let serial = map(jobs.clone(), |x| child_seed(42, x));
        for threads in [2, 3, 8] {
            set_threads(Some(threads));
            let parallel = map(jobs.clone(), |x| child_seed(42, x));
            assert_eq!(serial, parallel, "thread count {threads} changed results");
        }
        set_threads(None);
    }

    #[test]
    fn map_init_reuses_worker_state() {
        let _g = override_guard();
        set_threads(Some(2));
        // Each worker counts its own jobs; total must equal the job count.
        let counts = map_init(
            (0..50usize).collect(),
            || 0usize,
            |seen, _job| {
                *seen += 1;
                *seen
            },
        );
        set_threads(None);
        // Per-worker counters are each contiguous 1..=k sequences; the
        // sum of "is 1" entries equals the number of workers that ran.
        let workers = counts.iter().filter(|&&c| c == 1).count();
        assert!((1..=2).contains(&workers));
        assert_eq!(counts.len(), 50);
    }

    #[test]
    fn empty_and_single_job_inputs() {
        let _g = override_guard();
        set_threads(Some(8));
        let empty: Vec<u32> = map(Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(map(vec![7u32], |x| x + 1), vec![8]);
        set_threads(None);
    }

    #[test]
    fn child_seeds_differ_and_are_stable() {
        let a = child_seed(2017, 0);
        let b = child_seed(2017, 1);
        assert_ne!(a, b);
        assert_eq!(a, child_seed(2017, 0), "child_seed must be pure");
        // Different bases decorrelate.
        assert_ne!(child_seed(1, 5), child_seed(2, 5));
    }

    #[test]
    fn env_var_sets_thread_count() {
        let _g = override_guard();
        set_threads(None);
        std::env::set_var("RFC_THREADS", "3");
        assert_eq!(current_threads(), 3);
        std::env::remove_var("RFC_THREADS");
        set_threads(Some(5));
        assert_eq!(current_threads(), 5);
        set_threads(None);
    }
}
