//! A minimal scoped worker pool for embarrassingly parallel stages.
//!
//! Every expensive experiment driver in `rfc-net` is a loop of
//! independent jobs: one simulator run per `(pattern, load)` point, one
//! Monte-Carlo trial per repetition, one removal order per sample — and
//! the setup-heavy builds lower in the stack (routing reachability
//! tables, the simulator's ECMP candidate table) are loops of
//! independent per-switch chunks. This crate fans such loops out across
//! OS threads with zero external dependencies: [`std::thread::scope`]
//! plus an atomic work counter. It sits at the bottom of the workspace
//! dependency graph (no deps of its own) so every layer — `routing`,
//! `sim`, and the `rfc-net` facade, which re-exports it as
//! `rfc_net::parallel` — can share the one pool configuration.
//!
//! # Determinism
//!
//! Parallelism must not change results. Two rules make that hold:
//!
//! 1. Jobs never share an RNG. A driver draws one base seed from its
//!    caller-provided generator and derives an independent child seed
//!    per job with [`child_seed`] (a SplitMix64 finalizer over the job
//!    index), so the random stream a job sees depends only on
//!    `(base, index)` — never on which thread ran it or in what order.
//! 2. Results are written into a slot addressed by job index, so the
//!    output vector order matches the serial loop.
//!
//! Consequently `map` with 1 thread and with N threads produce
//! byte-identical output, which `crates/core/tests/parallel_determinism.rs`
//! locks in.
//!
//! # Thread count
//!
//! Resolution order: [`set_threads`] override (the `rfcgen --threads`
//! flag), then the `RFC_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. A value of 1 runs jobs inline
//! on the caller's thread with no pool at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunk size for work claiming: workers grab jobs in batches of this
/// many to keep contention on the shared counter negligible while still
/// stealing well when job costs are skewed (e.g. high-load simulator
/// runs take far longer than low-load ones).
const CHUNK: usize = 4;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for all subsequent [`map`] calls.
///
/// `Some(0)` is treated as unset. This is what `rfcgen --threads` and
/// the bench binaries call; it takes precedence over `RFC_THREADS`.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`map`] will use right now.
///
/// Resolution order: [`set_threads`] override, `RFC_THREADS`
/// environment variable, [`std::thread::available_parallelism`] (1 when
/// even that is unavailable).
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("RFC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide shard-count override; 0 means "not set".
static SHARD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the intra-run shard count for subsequent simulator runs.
///
/// `Some(0)` is treated as unset. This is what `rfcgen --shards` and the
/// bench binaries call; it takes precedence over `RFC_SHARDS`.
pub fn set_shards(n: Option<usize>) {
    SHARD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The shard count a simulator run started right now will use.
///
/// Resolution order: [`set_shards`] override, `RFC_SHARDS` environment
/// variable, then 1 (serial). Unlike [`current_threads`] the default is
/// *not* the machine's core count: shards parallelize *inside* one run,
/// while [`map`] already parallelizes *across* runs, and defaulting both
/// to all cores would oversubscribe every sweep. Results are identical
/// at any shard count, so this is purely a performance knob.
pub fn current_shards() -> usize {
    let forced = SHARD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("RFC_SHARDS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// A sense-reversing spin barrier for cycle-lockstep shard workers.
///
/// The simulator's sharded engine crosses a barrier twice per simulated
/// cycle (after stepping, after draining mailboxes). At thousands to
/// millions of cycles per run, `std::sync::Barrier`'s mutex+condvar
/// round trip dominates; this barrier is two atomics and a bounded spin,
/// which is what makes fine-grained lockstep sharding profitable at all.
///
/// Waiters spin on a generation counter with [`std::hint::spin_loop`]
/// for a short burst — long enough to cover an on-time peer on another
/// core — then fall back to [`std::thread::yield_now`] on every further
/// iteration, so oversubscribed configurations (more shards than cores)
/// degrade to scheduler-cooperative waiting instead of burning a core
/// per blocked party.
///
/// # Poisoning
///
/// A party that panics between barrier phases would leave its peers
/// waiting for a generation that never comes. Workers therefore hold a
/// [`PoisonGuard`] (see [`SpinBarrier::guard`]): when one unwinds mid-
/// protocol it poisons the barrier, and every waiter's fallback path
/// checks the flag and panics instead of yielding forever. The check
/// lives only in the post-spin branch, so the panic-free fast path
/// (peer arrives within the spin burst) costs nothing extra.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `parties` participating threads (must be ≥ 1).
    #[must_use]
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all `parties` threads have called `wait` for the
    /// current generation.
    ///
    /// Release/Acquire pairing on both atomics makes every write a
    /// thread performed before the barrier visible to every thread
    /// after it, which is what the mailbox exchange relies on.
    ///
    /// # Panics
    ///
    /// Panics if the barrier is [poisoned](SpinBarrier::poison) while
    /// waiting, so a peer's panic fails the whole worker team fast
    /// instead of hanging it.
    pub fn wait(&self) {
        if self.parties == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count for the next generation,
            // then release everyone by bumping the generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins: u32 = 0;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < 128 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                assert!(
                    !self.poisoned.load(Ordering::Acquire),
                    "SpinBarrier poisoned: a peer worker panicked between barrier phases"
                );
                std::thread::yield_now();
            }
        }
    }

    /// Marks the barrier poisoned: every current and future waiter's
    /// fallback path will panic instead of waiting for a release that
    /// can no longer happen.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// An RAII guard that [poisons](SpinBarrier::poison) the barrier if
    /// it is dropped during a panic unwind. Every worker of a lockstep
    /// team should hold one for its whole closure body.
    #[must_use]
    pub fn guard(&self) -> PoisonGuard<'_> {
        PoisonGuard { barrier: self }
    }
}

/// RAII handle from [`SpinBarrier::guard`]: poisons the barrier when
/// dropped mid-panic, so surviving parties unwind instead of hanging.
#[derive(Debug)]
pub struct PoisonGuard<'a> {
    barrier: &'a SpinBarrier,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poison();
        }
    }
}

/// Runs one scoped worker thread per element of `states`, passing each
/// worker its index and exclusive `&mut` access to its state.
///
/// This is the execution substrate for the sharded simulator: each
/// shard's queues, credits and event wheel live in one `states` element,
/// and the workers coordinate through a [`SpinBarrier`] and shared
/// mailboxes captured by `f`. With a single state, `f` runs inline on
/// the caller's thread — no threads, no atomics.
///
/// Worker panics are re-raised on the caller with their original
/// payload. A panic *between* barrier phases would leave the surviving
/// workers waiting; teams coordinating through a [`SpinBarrier`] must
/// therefore hold a [`PoisonGuard`] ([`SpinBarrier::guard`]) so peers
/// fail fast instead of hanging (the engine's workers do).
pub fn run_shard_workers<T, F>(states: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if states.len() == 1 {
        f(0, &mut states[0]);
        return;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .enumerate()
            .map(|(index, state)| {
                let f = &f;
                scope.spawn(move || f(index, state))
            })
            .collect();
        for h in handles {
            h.join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        }
    });
}

/// Derives the RNG seed for job `index` from a per-stage `base` seed.
///
/// SplitMix64: the standard 64-bit finalizer over `base + (index+1)·γ`.
/// Consecutive indices map to statistically independent seeds, and the
/// result depends only on `(base, index)`, which is what makes parallel
/// schedules reproducible. Drivers must use this (rather than handing
/// jobs slices of one shared stream) for every parallelized loop.
#[must_use]
pub fn child_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every job, in parallel, preserving input order.
///
/// Equivalent to `jobs.into_iter().map(f).collect()` but fanned out
/// over [`current_threads`] workers. `f` must be deterministic in its
/// argument alone (seed any randomness via [`child_seed`]); under that
/// contract the output is identical at every thread count.
pub fn map<T, U, F>(jobs: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    map_init(jobs, || (), |(), job| f(job))
}

/// Like [`map`], but each worker first builds a reusable state with
/// `init` and threads it through its jobs.
///
/// This is how the sweep drivers share one `RunScratch` (the
/// simulator's preallocated queues and event wheel) across all runs a
/// worker executes, instead of reallocating per job.
pub fn map_init<T, U, S, F, I>(jobs: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n_jobs = jobs.len();
    let threads = current_threads().min(n_jobs).max(1);

    if threads == 1 {
        let mut state = init();
        return jobs.into_iter().map(|job| f(&mut state, job)).collect();
    }

    // Job intake: each slot is taken exactly once by the worker that
    // claims its index. Mutex<Option<T>> keeps this safe without
    // `unsafe`; the lock is uncontended by construction (a slot has
    // exactly one claimant) so the cost is one atomic pair per job,
    // dwarfed by any simulator run or Monte-Carlo trial.
    let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);

    let mut per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n_jobs {
                            break;
                        }
                        let end = (start + CHUNK).min(n_jobs);
                        for (idx, slot) in slots.iter().enumerate().take(end).skip(start) {
                            // A slot is locked exactly once (by its sole
                            // claimant), so poisoning can only be residue
                            // of a panic elsewhere — recover the job
                            // rather than cascade the panic.
                            let job = slot
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .take()
                                .expect("job claimed twice");
                            done.push((idx, f(&mut state, job)));
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a worker's panic with its original payload
                // instead of wrapping it in a second, less informative
                // `expect` panic.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    // Reassemble in job order.
    let mut out: Vec<Option<U>> = Vec::with_capacity(n_jobs);
    out.resize_with(n_jobs, || None);
    for worker in &mut per_worker {
        for (idx, value) in worker.drain(..) {
            out[idx] = Some(value);
        }
    }
    out.into_iter()
        .map(|v| v.expect("job produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Takes the override lock, recovering from poison: a failed
    /// sibling test must not cascade into every other override test.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn map_preserves_order() {
        let _g = override_guard();
        set_threads(Some(4));
        let out = map((0..100u64).collect(), |x| x * x);
        set_threads(None);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let _g = override_guard();
        let jobs: Vec<u64> = (0..37).collect();
        set_threads(Some(1));
        let serial = map(jobs.clone(), |x| child_seed(42, x));
        for threads in [2, 3, 8] {
            set_threads(Some(threads));
            let parallel = map(jobs.clone(), |x| child_seed(42, x));
            assert_eq!(serial, parallel, "thread count {threads} changed results");
        }
        set_threads(None);
    }

    #[test]
    fn map_init_reuses_worker_state() {
        let _g = override_guard();
        set_threads(Some(2));
        // Each worker counts its own jobs; total must equal the job count.
        let counts = map_init(
            (0..50usize).collect(),
            || 0usize,
            |seen, _job| {
                *seen += 1;
                *seen
            },
        );
        set_threads(None);
        // Per-worker counters are each contiguous 1..=k sequences; the
        // sum of "is 1" entries equals the number of workers that ran.
        let workers = counts.iter().filter(|&&c| c == 1).count();
        assert!((1..=2).contains(&workers));
        assert_eq!(counts.len(), 50);
    }

    #[test]
    fn empty_and_single_job_inputs() {
        let _g = override_guard();
        set_threads(Some(8));
        let empty: Vec<u32> = map(Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(map(vec![7u32], |x| x + 1), vec![8]);
        set_threads(None);
    }

    #[test]
    fn child_seeds_differ_and_are_stable() {
        let a = child_seed(2017, 0);
        let b = child_seed(2017, 1);
        assert_ne!(a, b);
        assert_eq!(a, child_seed(2017, 0), "child_seed must be pure");
        // Different bases decorrelate.
        assert_ne!(child_seed(1, 5), child_seed(2, 5));
    }

    #[test]
    fn shard_count_defaults_to_one() {
        let _g = override_guard();
        set_shards(None);
        std::env::remove_var("RFC_SHARDS");
        assert_eq!(current_shards(), 1, "shards must default to serial");
        std::env::set_var("RFC_SHARDS", "4");
        assert_eq!(current_shards(), 4);
        std::env::remove_var("RFC_SHARDS");
        set_shards(Some(8));
        assert_eq!(current_shards(), 8, "override beats env");
        set_shards(None);
    }

    #[test]
    fn shard_workers_own_their_state_by_index() {
        let mut states: Vec<(usize, u64)> = (0..6).map(|i| (i, 0)).collect();
        run_shard_workers(&mut states, |index, state| {
            assert_eq!(state.0, index, "worker got the wrong shard");
            state.1 = child_seed(99, index as u64);
        });
        for (i, state) in states.iter().enumerate() {
            assert_eq!(state.1, child_seed(99, i as u64));
        }
    }

    #[test]
    fn shard_workers_single_state_runs_inline() {
        let caller = std::thread::current().id();
        let mut states = vec![None];
        run_shard_workers(&mut states, |_, state| {
            *state = Some(std::thread::current().id());
        });
        assert_eq!(states[0], Some(caller), "one shard must not spawn");
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        const PARTIES: usize = 4;
        // Miri executes this orders of magnitude slower; fewer rounds
        // still cross every barrier path.
        const ROUNDS: usize = if cfg!(miri) { 10 } else { 200 };
        let barrier = SpinBarrier::new(PARTIES);
        let counter = AtomicUsize::new(0);
        let mut states: Vec<Vec<usize>> = vec![Vec::new(); PARTIES];
        run_shard_workers(&mut states, |_, seen| {
            for round in 0..ROUNDS {
                counter.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
                // Between the two waits the counter is stable at its
                // per-round total: everyone has incremented, nobody has
                // started the next round.
                seen.push(counter.load(Ordering::Relaxed) - round * PARTIES);
                barrier.wait();
            }
        });
        for seen in &states {
            assert!(seen.iter().all(|&s| s == PARTIES), "barrier leaked a round");
        }
    }

    #[test]
    fn spin_barrier_single_party_is_free() {
        let barrier = SpinBarrier::new(1);
        for _ in 0..10 {
            barrier.wait();
        }
    }

    #[test]
    fn panicking_worker_poisons_the_barrier() {
        // Regression: without poisoning, workers 1 and 2 yield forever
        // at their second wait once worker 0 dies between phases, and
        // this test times out instead of completing. Run the whole team
        // on a helper thread so a hang fails the test rather than
        // wedging the harness.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let caught = std::panic::catch_unwind(|| {
                let barrier = SpinBarrier::new(3);
                let mut states = vec![(); 3];
                run_shard_workers(&mut states, |index, ()| {
                    let _poison = barrier.guard();
                    barrier.wait();
                    if index == 0 {
                        panic!("worker 0 dies between barrier phases");
                    }
                    for _ in 0..1000 {
                        barrier.wait();
                    }
                });
            });
            tx.send(caught.is_err())
                .expect("the test thread waits on the channel");
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("surviving workers must fail fast, not hang");
        assert!(panicked, "the worker panic must propagate to the caller");
    }

    #[test]
    fn env_var_sets_thread_count() {
        let _g = override_guard();
        set_threads(None);
        std::env::set_var("RFC_THREADS", "3");
        assert_eq!(current_threads(), 3);
        std::env::remove_var("RFC_THREADS");
        set_threads(Some(5));
        assert_eq!(current_threads(), 5);
        set_threads(None);
    }
}
