//! Quickstart: build a random folded Clos, verify it supports up/down
//! routing, inspect a route, and simulate uniform traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::routing::RoutingOracle;
use rfc_net::scenarios::rfc_with_updown;
use rfc_net::sim::{SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::theory;
use rfc_net::UpDownRouting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);

    // 1. Size a 3-level radix-12 RFC at the Theorem 4.2 threshold.
    let radix = 12;
    let levels = 3;
    let n1 = theory::max_leaves_at_threshold(radix, levels).expect("radix large enough");
    println!("threshold sizing: radix {radix}, {levels} levels -> N1 = {n1} leaves");
    println!(
        "  P(up/down at exact threshold) ~ e^-e^-x = {:.3} per draw",
        theory::updown_probability(theory::threshold_slack(radix, n1, levels))
    );

    // 2. Generate until a draw has the common-ancestor property.
    let net = rfc_with_updown(radix, n1, levels, 50, &mut rng)?;
    println!(
        "built {:?}: {} switches, {} wires, {} compute nodes",
        net.kind(),
        net.num_switches(),
        net.num_links(),
        net.num_terminals()
    );

    // 3. Routing: ECMP candidates and one sampled up/down path.
    let routing = UpDownRouting::new(&net);
    assert!(routing.has_updown_property());
    let (a, b) = (0u32, (net.num_leaves() - 1) as u32);
    let hops = routing.next_hops(a, b);
    let path = routing.sample_path(a, b, &mut rng).expect("connected");
    println!(
        "leaf {a} -> leaf {b}: {} first-hop choices, sample path {path:?}",
        hops.len()
    );
    println!(
        "  minimal up/down distance: {} hops",
        routing.updown_distance(a, b).unwrap()
    );

    // 4. Simulate uniform traffic at half load.
    let sim_net = SimNetwork::from_folded_clos(&net);
    let sim = Simulation::new(&sim_net, &routing, SimConfig::quick());
    let result = sim.run(TrafficPattern::Uniform, 0.5, 7);
    println!(
        "uniform load 0.5: accepted {:.3} phits/node/cycle, mean latency {:.1} cycles \
         ({} packets delivered)",
        result.accepted_load, result.avg_latency, result.delivered_packets
    );
    Ok(())
}
