//! Graceful expansion (Section 5): grow a random folded Clos in minimal
//! steps — two switches per level, one root, R new compute nodes — while
//! tracking rewiring cost and checking that up/down routing survives
//! until the Theorem 4.2 threshold is reached.
//!
//! ```text
//! cargo run --release --example incremental_expansion
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::theory;
use rfc_net::topology::expansion::expand_rfc;
use rfc_net::topology::FoldedClos;
use rfc_net::UpDownRouting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);
    let radix = 12;
    let levels = 3;
    let max_n1 = theory::max_leaves_at_threshold(radix, levels).expect("radix large enough");

    // Start well below the threshold and grow toward it.
    let mut net = FoldedClos::random(radix, max_n1 / 2, levels, &mut rng)?;
    println!(
        "start: N1 = {} leaves, {} terminals (threshold max N1 = {max_n1})",
        net.num_leaves(),
        net.num_terminals()
    );
    println!(
        "{:>6} {:>10} {:>9} {:>10} {:>12} {:>8}",
        "step", "terminals", "N1", "rewired", "rewired/link", "up/down"
    );

    let mut total_rewired = 0usize;
    for step in 1..=8 {
        let links_before = net.num_links();
        let report = expand_rfc(&mut net, 4, &mut rng)?;
        total_rewired += report.rewired_links;
        let updown = UpDownRouting::new(&net).has_updown_property();
        println!(
            "{step:>6} {:>10} {:>9} {:>10} {:>11.2}% {:>8}",
            net.num_terminals(),
            net.num_leaves(),
            report.rewired_links,
            100.0 * report.rewired_links as f64 / links_before as f64,
            updown
        );
        if net.num_leaves() >= max_n1 {
            println!("reached the Theorem 4.2 threshold; further growth would need a new level");
            break;
        }
    }
    println!(
        "total: {} links rewired over the whole growth ({} wires now live)",
        total_rewired,
        net.num_links()
    );

    // Contrast with the fat-tree: the only way to grow a maxed 3-level
    // CFT is a whole new level.
    let cft3 = FoldedClos::cft(radix, 3)?;
    let cft4 = FoldedClos::cft(radix, 4)?;
    println!(
        "CFT contrast: 3 levels top out at {} nodes; the next step is a 4-level fabric \
         with {} switches ({}x)",
        cft3.num_terminals(),
        cft4.num_switches(),
        cft4.num_switches() / cft3.num_switches()
    );
    Ok(())
}
