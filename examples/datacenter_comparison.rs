//! The paper's headline comparison at example scale: a commodity
//! fat-tree and a random folded Clos with *equal resources* (same radix,
//! switches, wires, terminals), simulated under the three synthetic
//! datacenter traffic patterns.
//!
//! ```text
//! cargo run --release --example datacenter_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::experiments::simfig;
use rfc_net::scenarios::{equal_resources, Scale};
use rfc_net::sim::{SimConfig, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);
    let scenario = equal_resources(Scale::Small, &mut rng)?;
    println!("scenario `{}`:", scenario.name);
    for net in &scenario.nets {
        println!(
            "  {:<16} {} switches, {} wires, {} terminals",
            net.label,
            net.clos.num_switches(),
            net.clos.num_links(),
            net.terminals
        );
    }

    let mut cfg = SimConfig::quick();
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 4_000;
    let loads = [0.2, 0.4, 0.6, 0.8, 1.0];
    let points = simfig::run(&scenario, &TrafficPattern::ALL, &loads, cfg, 2017);

    for pattern in TrafficPattern::ALL {
        println!("\n--- {pattern} ---");
        println!(
            "{:>8}  {:>22}  {:>22}",
            "load", "accepted / latency", "accepted / latency"
        );
        println!(
            "{:>8}  {:>22}  {:>22}",
            "", scenario.nets[0].label, scenario.nets[1].label
        );
        for &load in &loads {
            let cell = |net: &str| {
                points
                    .iter()
                    .find(|p| p.net == net && p.pattern == pattern && p.offered == load)
                    .map(|p| format!("{:.2} / {:>6.1}", p.accepted, p.latency))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "{load:>8.2}  {:>22}  {:>22}",
                cell(&scenario.nets[0].label),
                cell(&scenario.nets[1].label)
            );
        }
        let sat_cft = simfig::saturation(&points, &scenario.nets[0].label, pattern);
        let sat_rfc = simfig::saturation(&points, &scenario.nets[1].label, pattern);
        println!(
            "saturation: cft {sat_cft:.2}, rfc {sat_rfc:.2} ({:.0}% of cft)",
            100.0 * sat_rfc / sat_cft
        );
    }
    Ok(())
}
