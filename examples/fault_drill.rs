//! Resiliency drill (Section 7): progressively break random links of an
//! equal-resources CFT and RFC, recompute routing, and watch both the
//! up/down property and the simulated saturation throughput degrade.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rfc_net::routing::fault::updown_tolerance_trial;
use rfc_net::scenarios::{equal_resources, Scale};
use rfc_net::sim::{SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::UpDownRouting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);
    let scenario = equal_resources(Scale::Small, &mut rng)?;

    // 1. How many random link failures does up/down routing survive?
    for net in scenario.nets.iter().take(2) {
        let trial = updown_tolerance_trial(&net.clos, &mut rng);
        println!(
            "{:<16} tolerates {:>4} of {:>4} broken links ({:.1}%) before a leaf pair \
             loses all common ancestors",
            net.label,
            trial.tolerated,
            trial.total_links,
            100.0 * trial.fraction()
        );
    }

    // 2. Throughput under cumulative faults.
    println!("\nthroughput under faults (uniform traffic, offered load 1.0):");
    println!(
        "{:>10} {:>14} {:>14}",
        "faults", scenario.nets[0].label, scenario.nets[1].label
    );
    let cfg = SimConfig::quick();
    let steps = [0.0, 0.04, 0.08, 0.12];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for net in scenario.nets.iter().take(2) {
        let mut order = net.clos.links();
        order.shuffle(&mut rng);
        let mut col = Vec::new();
        for &frac in &steps {
            let k = (order.len() as f64 * frac) as usize;
            let faulty = net.clos.with_links_removed(&order[..k]);
            let routing = UpDownRouting::new(&faulty);
            let sim_net = SimNetwork::from_folded_clos(&faulty);
            let sim = Simulation::new(&sim_net, &routing, cfg);
            col.push(sim.max_throughput(TrafficPattern::Uniform, 99));
        }
        columns.push(col);
    }
    for (i, &frac) in steps.iter().enumerate() {
        println!(
            "{:>9.0}% {:>14.3} {:>14.3}",
            100.0 * frac,
            columns[0][i],
            columns[1][i]
        );
    }
    println!("\n(the paper's Figure 12 shows the same gentle degradation, with the RFC\n overtaking the CFT past ~12% broken links at full scale)");
    Ok(())
}
