//! Oversubscription study (XGFT extension): datacenters often thin the
//! fat-tree spine to save cost; the RFC competes against exactly this
//! knob. Compare a full 3-level fat-tree, 2:1 and 4:1 tapered variants,
//! and an equal-cost random folded Clos under uniform and permutation
//! traffic.
//!
//! ```text
//! cargo run --release --example oversubscription
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::sim::{SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::topology::FoldedClos;
use rfc_net::UpDownRouting;

fn measure(clos: &FoldedClos, label: &str, cfg: SimConfig) {
    let routing = UpDownRouting::new(clos);
    let net = SimNetwork::from_folded_clos(clos);
    let sim = Simulation::new(&net, &routing, cfg);
    let uni = sim.max_throughput(TrafficPattern::Uniform, 1);
    let pair = sim.max_throughput(TrafficPattern::RandomPairing, 2);
    println!(
        "{label:<22} {:>9} {:>7} {:>9.3} {:>9.3}",
        clos.num_switches(),
        clos.num_links(),
        uni,
        pair
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);
    let k = 4usize;
    let mut cfg = SimConfig::quick();
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 4_000;

    println!(
        "{:<22} {:>9} {:>7} {:>9} {:>9}",
        "network", "switches", "wires", "uniform", "pairing"
    );
    // Full fat-tree (CFT shape as an XGFT) and tapered variants, all
    // with 2k^2 = 128 terminals.
    let full = FoldedClos::xgft(&[k, 2 * k], &[k, k], k)?;
    measure(&full, "fat-tree 1:1", cfg);
    let taper2 = FoldedClos::xgft(&[k, 2 * k], &[k / 2, k], k)?;
    measure(&taper2, "fat-tree 2:1 taper", cfg);
    let taper4 = FoldedClos::xgft(&[k, 2 * k], &[k / 4, k], k)?;
    measure(&taper4, "fat-tree 4:1 taper", cfg);

    // RFC sized to match the 2:1 taper's wire budget: the taper has
    // 32*2 + 32*4 = 192 wires; an RFC with N1 = 32 and radix 6 has
    // 2*32*3 = 192 wires and 96 terminals.
    let rfc = rfc_net::scenarios::rfc_with_updown(6, 32, 3, 50, &mut rng)?;
    measure(&rfc, "rfc(6,32,3) equal-wire", cfg);

    println!(
        "\nTapering caps uniform throughput near the taper ratio, while the \
         equal-wire RFC\nkeeps near-full uniform throughput at a smaller radix — \
         the paper's cost argument\nfrom the oversubscription angle."
    );
    Ok(())
}
