//! Topology explorer: builds one instance of every topology family in
//! the paper, prints its structural scorecard (size, cost, diameter,
//! bisection bound, mean distance), and exports a small RFC as Graphviz
//! DOT.
//!
//! ```text
//! cargo run --release --example topology_explorer > /tmp/rfc.dot
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::graph::traversal;
use rfc_net::theory;
use rfc_net::topology::{FoldedClos, Network, Rrn};

fn scorecard(label: &str, net: &dyn Network, leaf_diameter: Option<u32>) {
    let graph = net.switch_graph();
    let sources: Vec<u32> = (0..graph.num_vertices() as u32)
        .step_by(7)
        .take(16)
        .collect();
    let mean = traversal::mean_distance_sampled(&graph, &sources)
        .map_or_else(|| "-".into(), |d| format!("{d:.2}"));
    println!(
        "{label:<18} radix {:>2}  switches {:>5}  wires {:>6}  terminals {:>5}  \
         diameter {:>3}  mean-dist {}",
        net.max_radix(),
        net.num_switches(),
        net.num_switch_links(),
        net.num_terminals(),
        leaf_diameter.map_or_else(|| "-".into(), |d| d.to_string()),
        mean
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2017);

    println!("== structural scorecards (radix-12 class, 3 levels / diameter 4) ==");
    let cft = FoldedClos::cft(12, 3)?;
    scorecard("cft(12,3)", &cft, cft.leaf_diameter());
    let kary = FoldedClos::kary_tree(6, 3)?;
    scorecard("6-ary 3-tree", &kary, kary.leaf_diameter());
    let oft = FoldedClos::oft(5, 2)?;
    scorecard("oft(q=5,l=2)", &oft, oft.leaf_diameter());
    let rfc = FoldedClos::random(12, 150, 3, &mut rng)?;
    scorecard("rfc(12,150,3)", &rfc, rfc.leaf_diameter());
    let rrn = Rrn::new(100, 9, 3, &mut rng)?;
    let rrn_diam = traversal::diameter(&rrn.graph());
    scorecard("rrn(100,9,3)", &rrn, rrn_diam);

    println!("\n== analytic bounds at radix 36 (paper Section 4.2) ==");
    println!(
        "normalized bisection: rfc 2-level {:.2}, rfc 3-level {:.2}, rrn(26,10) {:.2}, cft 1.00",
        theory::rfc_normalized_bisection(1_000, 2, 36),
        theory::rfc_normalized_bisection(1_000, 3, 36),
        theory::rrn_normalized_bisection(26, 10),
    );
    println!(
        "max terminals at diameter 4: cft {}, rfc {}, oft {}",
        theory::cft_terminals(36, 3),
        theory::rfc_max_terminals(36, 3).unwrap(),
        theory::oft_terminals(17, 3),
    );

    // DOT export of a pocket-size RFC (the paper's Figure 4 shape).
    let pocket = FoldedClos::random(4, 8, 3, &mut rng)?;
    println!("\n== graphviz dot of rfc(4,8,3) ==");
    println!("graph rfc {{");
    println!("  rankdir=BT; node [shape=box];");
    for level in 0..pocket.num_levels() {
        let ids: Vec<String> = (0..pocket.level_size(level))
            .map(|i| format!("s{}", pocket.switch_id(level, i)))
            .collect();
        println!("  {{ rank=same; {} }}", ids.join("; "));
    }
    for link in pocket.links() {
        println!("  s{} -- s{};", link.lower, link.upper);
    }
    println!("}}");
    Ok(())
}
