//! End-to-end tests of the `rfcgen` command-line tool through its
//! library interface.

fn run(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    rfcgen::run(&argv, &mut buf).map_err(|e| e.to_string())?;
    Ok(String::from_utf8(buf).expect("utf8"))
}

#[test]
fn threshold_matches_theory_module() {
    let text = run(&["threshold", "--radix", "36", "--levels", "3"]).unwrap();
    let n1 = rfc_net::theory::max_leaves_at_threshold(36, 3).unwrap();
    assert!(text.contains(&n1.to_string()), "{text}");
    assert!(text.contains(&(n1 * 18).to_string()));
}

#[test]
fn generate_dot_is_parseable_shape() {
    let dot = run(&[
        "generate", "--kind", "rfc", "--radix", "6", "--leaves", "12", "--levels", "2", "--format",
        "dot", "--seed", "5",
    ])
    .unwrap();
    assert!(dot.starts_with("graph"));
    assert!(dot.trim_end().ends_with('}'));
    // 12 leaves * 3 up-links = 36 edges.
    assert_eq!(dot.matches(" -- ").count(), 36);
}

#[test]
fn generate_edges_count_matches_wires() {
    let edges = run(&[
        "generate", "--kind", "cft", "--radix", "6", "--levels", "3", "--format", "edges",
    ])
    .unwrap();
    let cft = rfc_net::FoldedClos::cft(6, 3).unwrap();
    assert_eq!(edges.lines().count(), cft.num_links());
}

#[test]
fn analyze_flags_sub_threshold_networks() {
    let text = run(&[
        "analyze", "--kind", "rfc", "--radix", "4", "--leaves", "64", "--levels", "2", "--seed",
        "3",
    ])
    .unwrap();
    assert!(text.contains("up/down routing: false"), "{text}");
    assert!(text.contains("connected leaf pairs"));
}

#[test]
fn simulate_all_to_one_saturates_the_hotspot() {
    let text = run(&[
        "simulate",
        "--kind",
        "cft",
        "--radix",
        "8",
        "--levels",
        "2",
        "--traffic",
        "all-to-one",
        "--load",
        "1.0",
        "--cycles",
        "800",
        "--warmup",
        "200",
    ])
    .unwrap();
    // With T-1 senders and one 1-phit/cycle ejector, accepted load per
    // node is about 1/(T-1) ~ 0.032.
    let accepted: f64 = text
        .lines()
        .find(|l| l.starts_with("accepted"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().parse().ok())
        .expect("accepted line");
    assert!(accepted < 0.1, "incast must cap throughput, got {accepted}");
}

#[test]
fn expand_then_analyze_round_trip() {
    let text = run(&[
        "expand", "--kind", "rfc", "--radix", "8", "--leaves", "24", "--levels", "2", "--steps",
        "3", "--seed", "11",
    ])
    .unwrap();
    assert!(text.contains("added terminals  : 24"), "{text}");
    assert!(text.contains("up/down after"));
}

#[test]
fn rrn_generation_and_analysis() {
    let text = run(&[
        "analyze",
        "--kind",
        "rrn",
        "--switches",
        "30",
        "--degree",
        "4",
        "--hosts",
        "2",
    ])
    .unwrap();
    assert!(text.contains("switches : 30"));
    assert!(text.contains("diameter"));
}

#[test]
fn usage_errors_are_reported() {
    assert!(run(&["generate", "--kind", "banana"]).is_err());
    assert!(
        run(&["simulate", "--kind", "rrn"]).is_err(),
        "direct nets need SP oracle"
    );
}
