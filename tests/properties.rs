//! Property-based integration tests: random parameters, structural and
//! behavioral invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::graph::random::{random_bipartite, random_regular};
use rfc_net::graph::Csr;
use rfc_net::routing::RoutingOracle;
use rfc_net::sim::{SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::topology::FoldedClos;
use rfc_net::UpDownRouting;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Steger–Wormald output is always simple and regular.
    #[test]
    fn random_regular_is_simple_and_regular(
        n in 4usize..60,
        d in 2usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let adj = random_regular(n, d, &mut rng).unwrap();
        let g = Csr::from_adjacency(&adj);
        prop_assert!(g.is_regular(d));
        for v in 0..n as u32 {
            prop_assert!(!g.has_edge(v, v), "self loop at {v}");
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] != w[1], "parallel edge at {v}");
            }
        }
    }

    /// Random bipartite stages are semiregular and symmetric.
    #[test]
    fn random_bipartite_is_semiregular(
        n1 in 4usize..48,
        d1 in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Pick a compatible right side: n2 * d2 == n1 * d1.
        let d2 = 2 * d1;
        prop_assume!(n1 * d1 % d2 == 0);
        let n2 = n1 * d1 / d2;
        prop_assume!(n2 >= 1 && d1 <= n2 && d2 <= n1);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_bipartite(n1, d1, n2, d2, &mut rng).unwrap();
        prop_assert!(g.is_semiregular(d1, d2));
    }

    /// Every generated RFC is structurally valid and radix-regular,
    /// with the exact switch/wire/terminal accounting of Section 5.
    #[test]
    fn rfc_structure_invariants(
        half in 2usize..6,
        n1_half in 4usize..24,
        levels in 2usize..5,
        seed in 0u64..1000,
    ) {
        let radix = 2 * half;
        let n1 = 2 * n1_half;
        prop_assume!(radix <= n1);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = FoldedClos::random(radix, n1, levels, &mut rng).unwrap();
        net.validate().unwrap();
        prop_assert!(net.is_radix_regular());
        prop_assert_eq!(net.num_switches(), (levels - 1) * n1 + n1 / 2);
        prop_assert_eq!(net.num_links(), (levels - 1) * n1 * half);
        prop_assert_eq!(net.num_terminals(), n1 * half);
    }

    /// When the up/down property holds, every leaf pair is reachable in
    /// at most 2(l-1) hops following any ECMP choice.
    #[test]
    fn updown_routing_delivers_within_bound(
        half in 3usize..6,
        levels in 2usize..4,
        seed in 0u64..400,
    ) {
        let radix = 2 * half;
        let n1 = 4 * half; // comfortably above threshold for these sizes
        let mut rng = StdRng::seed_from_u64(seed);
        let net = FoldedClos::random(radix, n1, levels, &mut rng).unwrap();
        let routing = UpDownRouting::new(&net);
        prop_assume!(routing.has_updown_property());
        use rand::Rng;
        for _ in 0..20 {
            let a = rng.gen_range(0..n1) as u32;
            let b = rng.gen_range(0..n1) as u32;
            let mut cur = a;
            let mut hops = 0usize;
            while cur != b {
                let c = routing.next_hops(cur, b);
                prop_assert!(!c.is_empty());
                cur = c[rng.gen_range(0..c.len())];
                hops += 1;
                prop_assert!(hops <= 2 * (levels - 1));
            }
        }
    }

    /// Packet conservation in the simulator: generated = delivered +
    /// still in flight, under any pattern/load.
    #[test]
    fn simulator_conserves_packets(
        load in 0.05f64..1.0,
        pattern_idx in 0usize..3,
        seed in 0u64..200,
    ) {
        let clos = FoldedClos::cft(6, 2).unwrap();
        let routing = UpDownRouting::new(&clos);
        let net = SimNetwork::from_folded_clos(&clos);
        let mut cfg = SimConfig::quick();
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 600;
        let sim = Simulation::new(&net, &routing, cfg);
        let r = sim.run(TrafficPattern::ALL[pattern_idx], load, seed);
        prop_assert_eq!(
            r.generated_packets,
            r.delivered_packets + r.in_flight_at_end
        );
        prop_assert!(r.accepted_load <= load + 0.12);
    }

    /// Fault injection never increases connectivity and routing stays
    /// sound on the surviving fabric.
    #[test]
    fn faults_only_shrink_reachability(
        seed in 0u64..300,
        stride in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = FoldedClos::random(8, 24, 3, &mut rng).unwrap();
        let links = net.links();
        let victims: Vec<_> = links.iter().step_by(stride).copied().collect();
        let faulty = net.with_links_removed(&victims);
        let before = UpDownRouting::new(&net);
        let after = UpDownRouting::new(&faulty);
        for leaf in 0..net.num_leaves() as u32 {
            prop_assert!(
                before.updown_reach(leaf).is_superset(after.updown_reach(leaf)),
                "faults must not create reachability"
            );
        }
    }
}
