//! The paper's quantitative claims, asserted literally against the
//! implementation (Sections 3–5 and the abstract).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::cost;
use rfc_net::theory;
use rfc_net::topology::FoldedClos;

#[test]
fn abstract_same_nodes_much_lower_cost() {
    // "Being able up to connect the same number of compute nodes ...
    // and giving similar performance" at far lower cost: the 100K case
    // connects 100,008 nodes with a 3-level RFC where the CFT needs a
    // fully equipped 4-level fabric.
    let rfc = cost::rfc_cost(36, 5_556, 3);
    let cft = cost::cft_cost(36, 4);
    assert_eq!(rfc.terminals, 100_008);
    assert!(cft.terminals >= 100_008);
    assert!(rfc.switches * 2 < cft.switches);
    assert!(rfc.switch_wires * 3 < cft.switch_wires);
}

#[test]
fn section3_cft_doubles_kary_tree() {
    for (r, l) in [(4usize, 3usize), (8, 3), (12, 4)] {
        let cft = FoldedClos::cft(r, l).unwrap();
        let kary = FoldedClos::kary_tree(r / 2, l).unwrap();
        assert_eq!(cft.num_terminals(), 2 * kary.num_terminals(), "R={r} l={l}");
    }
}

#[test]
fn section4_diameter_4_comparison() {
    // RFC ~ 202,554 vs CFT 11,664 vs RRN ~ 227,730 terminals.
    let rfc = theory::rfc_max_terminals(36, 3).unwrap();
    assert!(rfc > 200_000 && rfc < 206_000);
    assert_eq!(theory::cft_terminals(36, 3), 11_664);
    let rrn = 22_773 * 10; // the paper's RRN example
    let ratio = rrn as f64 / rfc as f64;
    assert!(
        (1.05..1.20).contains(&ratio),
        "RRN ~12% above the RFC: {ratio}"
    );
}

#[test]
fn section4_bisection_constants() {
    assert!((theory::rfc_normalized_bisection(10_000, 2, 36) - 0.80).abs() < 0.015);
    assert!((theory::rfc_normalized_bisection(10_000, 3, 36) - 0.86).abs() < 0.015);
    assert!((theory::rrn_normalized_bisection(26, 10) - 0.88).abs() < 0.015);
}

#[test]
fn section5_200k_savings() {
    // "savings of 31% and 36% in switches and wires".
    let [_, _, c200] = cost::paper_case_studies();
    assert_eq!(c200.rfc.terminals, 202_572);
    assert_eq!(c200.cft.terminals, 209_952);
    assert!((c200.switch_savings() - 0.311).abs() < 0.005);
    assert!((c200.wire_savings() - 0.357).abs() < 0.005);
}

#[test]
fn section5_radix_20_alternative() {
    // "a RFC with almost the same number of compute nodes can be
    // implemented with 20-radix routers ... 1,166 first-level routers
    // for a total of 11,660 compute nodes" at similar wire cost.
    let mut rng = StdRng::seed_from_u64(20);
    let alt = FoldedClos::random(20, 1_166, 3, &mut rng).unwrap();
    assert_eq!(alt.num_terminals(), 11_660);
    let main = FoldedClos::cft(36, 3).unwrap();
    let wire_ratio = alt.num_links() as f64 / main.num_links() as f64;
    assert!(
        (wire_ratio - 1.0).abs() < 0.01,
        "similar cost in wires: {wire_ratio}"
    );
    // And the threshold admits it.
    assert!(theory::max_leaves_at_threshold(20, 3).unwrap() >= 1_166);
}

#[test]
fn section5_expansion_step_is_radix_nodes() {
    // "at each incremental expansion it is possible to add R new
    // compute nodes" with 2 switches per level and 1 root.
    let mut rng = StdRng::seed_from_u64(5);
    let mut net = FoldedClos::random(12, 48, 3, &mut rng).unwrap();
    let t0 = net.num_terminals();
    let s0 = net.num_switches();
    let report = rfc_net::topology::expansion::expand_rfc(&mut net, 1, &mut rng).unwrap();
    assert_eq!(net.num_terminals() - t0, 12);
    assert_eq!(net.num_switches() - s0, 5);
    assert_eq!(report.added_terminals, 12);
}

#[test]
fn theorem_42_x0_probability_is_1_over_e() {
    let p = theory::updown_probability(0.0);
    assert!((p - 0.3679).abs() < 1e-3);
    // "if R = 2(N1 ln N1 + ln ln N1)^(1/(2(l-1))) the probability tends
    // to 1": positive slack drives P up.
    assert!(theory::updown_probability(3.0) > 0.95);
    assert!(theory::updown_probability(-3.0) < 0.05);
}

#[test]
fn figure_1_and_2_shapes() {
    // Figure 1: the 4-port 4-tree; Figure 2: the 2-level OFT of order 2.
    let f1 = FoldedClos::cft(4, 4).unwrap();
    assert_eq!(f1.num_terminals(), 32);
    assert_eq!(f1.num_switches(), 16 * 3 + 8);
    let f2 = FoldedClos::oft(2, 2).unwrap();
    assert_eq!(f2.num_leaves(), 14);
    assert_eq!(f2.level_size(1), 7);
}

#[test]
fn figure_3_network_matches_caption() {
    // "A random network with 16 routers of degree 4 and 2 compute nodes
    // per router."
    let mut rng = StdRng::seed_from_u64(3);
    let rrn = rfc_net::Rrn::new(16, 4, 2, &mut rng).unwrap();
    assert_eq!(rrn.num_terminals(), 32);
    assert!(rrn.graph().is_regular(4));
}

#[test]
fn figure_4_network_matches_caption() {
    // "RFC of radix 4, N1 = 16 and 4 levels."
    let mut rng = StdRng::seed_from_u64(4);
    let rfc = FoldedClos::random(4, 16, 4, &mut rng).unwrap();
    assert_eq!(rfc.num_levels(), 4);
    assert_eq!(rfc.num_leaves(), 16);
    assert!(rfc.is_radix_regular());
}
