//! End-to-end integration: every topology family is built, routed, and
//! simulated through the public API.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rfc_net::routing::{ksp, RoutingOracle, ShortestPathOracle};
use rfc_net::sim::{SimConfig, SimNetwork, Simulation, TrafficPattern};
use rfc_net::topology::{FoldedClos, Network, Rrn};
use rfc_net::UpDownRouting;

/// Builds, routes and simulates one folded Clos network; returns its
/// uniform-traffic result at the given load.
fn pipeline(clos: &FoldedClos, load: f64, seed: u64) -> rfc_net::sim::SimResult {
    clos.validate().expect("structural invariants");
    let routing = UpDownRouting::new(clos);
    assert!(
        routing.has_updown_property(),
        "scenario networks must be routable"
    );
    let net = SimNetwork::from_folded_clos(clos);
    let sim = Simulation::new(&net, &routing, SimConfig::quick());
    sim.run(TrafficPattern::Uniform, load, seed)
}

#[test]
fn cft_end_to_end() {
    let clos = FoldedClos::cft(8, 3).unwrap();
    let r = pipeline(&clos, 0.4, 1);
    assert!(r.delivered_packets > 0);
    assert!(
        (r.accepted_load - 0.4).abs() < 0.08,
        "below saturation: {}",
        r.accepted_load
    );
}

#[test]
fn kary_tree_end_to_end() {
    let clos = FoldedClos::kary_tree(4, 3).unwrap();
    let r = pipeline(&clos, 0.3, 2);
    assert!(r.delivered_packets > 0);
}

#[test]
fn oft_end_to_end() {
    let clos = FoldedClos::oft(3, 2).unwrap();
    let r = pipeline(&clos, 0.4, 3);
    assert!(r.delivered_packets > 0);
    assert!((r.accepted_load - 0.4).abs() < 0.08);
}

#[test]
fn rfc_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4);
    let clos = rfc_net::scenarios::rfc_with_updown(8, 32, 3, 50, &mut rng).unwrap();
    let r = pipeline(&clos, 0.4, 4);
    assert!(r.delivered_packets > 0);
    assert!((r.accepted_load - 0.4).abs() < 0.08);
}

#[test]
fn rrn_end_to_end_with_minimal_routing() {
    // The Jellyfish baseline, simulated with all-minimal-paths routing.
    let mut rng = StdRng::seed_from_u64(5);
    let rrn = Rrn::new(24, 5, 2, &mut rng).unwrap();
    let oracle = ShortestPathOracle::new(&rrn.graph());
    let net = SimNetwork::from_rrn(&rrn);
    let sim = Simulation::new(&net, &oracle, SimConfig::quick());
    let r = sim.run(TrafficPattern::Uniform, 0.2, 5);
    assert!(
        r.delivered_packets > 0,
        "direct network must deliver under light load"
    );
}

#[test]
fn rrn_ksp_finds_diverse_paths() {
    let mut rng = StdRng::seed_from_u64(6);
    let rrn = Rrn::new(20, 4, 1, &mut rng).unwrap();
    let g = rrn.graph();
    let paths = ksp::k_shortest_paths(&g, 0, 10, 4);
    assert!(!paths.is_empty());
    for w in paths.windows(2) {
        assert!(w[0].len() <= w[1].len());
    }
}

#[test]
fn faulty_rfc_reroutes_around_failures() {
    let mut rng = StdRng::seed_from_u64(7);
    let clos = rfc_net::scenarios::rfc_with_updown(10, 40, 3, 50, &mut rng).unwrap();
    // Remove 5% of links; up/down routing usually survives well above
    // the threshold.
    let links = clos.links();
    let victims: Vec<_> = links.iter().step_by(20).copied().collect();
    let faulty = clos.with_links_removed(&victims);
    let routing = UpDownRouting::new(&faulty);
    let net = SimNetwork::from_folded_clos(&faulty);
    let sim = Simulation::new(&net, &routing, SimConfig::quick());
    let r = sim.run(TrafficPattern::FixedRandom, 0.3, 7);
    assert!(r.delivered_packets > 0);
}

#[test]
fn expansion_then_simulation() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut clos = FoldedClos::random(8, 32, 3, &mut rng).unwrap();
    rfc_net::topology::expansion::expand_rfc(&mut clos, 3, &mut rng).unwrap();
    assert_eq!(clos.num_leaves(), 38);
    let routing = UpDownRouting::new(&clos);
    if routing.has_updown_property() {
        let net = SimNetwork::from_folded_clos(&clos);
        let sim = Simulation::new(&net, &routing, SimConfig::quick());
        let r = sim.run(TrafficPattern::Uniform, 0.3, 8);
        assert!(r.delivered_packets > 0);
    }
}

#[test]
fn network_trait_covers_both_families() {
    let mut rng = StdRng::seed_from_u64(9);
    let nets: Vec<Box<dyn Network>> = vec![
        Box::new(FoldedClos::cft(8, 2).unwrap()),
        Box::new(FoldedClos::oft(2, 2).unwrap()),
        Box::new(Rrn::new(16, 4, 2, &mut rng).unwrap()),
    ];
    for n in &nets {
        assert!(n.num_ports() >= 2 * n.num_switch_links());
        assert_eq!(n.switch_graph().num_edges(), n.num_switch_links());
        assert!(!n.label().is_empty());
    }
}

#[test]
fn oracle_progress_terminates_for_random_walks() {
    // Following random ECMP candidates must reach the destination in at
    // most 2(l-1) hops on an up/down network.
    let mut rng = StdRng::seed_from_u64(10);
    let clos = rfc_net::scenarios::rfc_with_updown(8, 24, 3, 50, &mut rng).unwrap();
    let routing = UpDownRouting::new(&clos);
    use rand::Rng;
    for _ in 0..200 {
        let a = rng.gen_range(0..clos.num_leaves()) as u32;
        let b = rng.gen_range(0..clos.num_leaves()) as u32;
        let mut current = a;
        let mut hops = 0;
        while current != b {
            let cands = routing.next_hops(current, b);
            assert!(!cands.is_empty(), "stuck at {current} toward {b}");
            current = cands[rng.gen_range(0..cands.len())];
            hops += 1;
            assert!(hops <= 4, "up/down paths are at most 2(l-1) hops");
        }
    }
}
