//! Workspace-level umbrella for the RFC reproduction.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); all functionality
//! lives in [`rfc_net`] and the crates it re-exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfc_net;
